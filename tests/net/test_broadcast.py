"""Unit tests for the timely-delivery broadcast service."""

from dataclasses import dataclass

import pytest

from repro.net.broadcast import BroadcastService
from repro.net.delay import SynchronousDelay
from repro.net.network import Network
from repro.sim.errors import ConfigError, NetworkError
from repro.sim.process import SimProcess
from repro.sim.trace import TraceKind

DELTA = 5.0


@dataclass(frozen=True)
class News:
    item: str


class Listener(SimProcess):
    def __init__(self, pid, engine):
        super().__init__(pid, engine)
        self.heard: list[tuple[str, str, float]] = []

    def on_news(self, sender, msg):
        self.heard.append((sender, msg.item, self.engine.now))


def build(engine, membership, trace, rng, entrant_policy="none", members=3):
    model = SynchronousDelay(delta=DELTA)
    network = Network(engine, membership, model, trace, rng)
    service = BroadcastService(
        engine,
        membership,
        network,
        model,
        trace,
        rng,
        window=DELTA,
        entrant_policy=entrant_policy,
    )
    for i in range(members):
        membership.enter(Listener(f"p{i}", engine))
    return service


class TestTimelyDelivery:
    def test_everyone_present_delivers_within_delta(
        self, engine, membership, trace, rng
    ):
        service = build(engine, membership, trace, rng)
        engine.run_until(10.0)
        service.broadcast("p0", News("flash"))
        engine.run()
        for process in membership.present_processes():
            assert len(process.heard) == 1
            _, _, at = process.heard[0]
            assert 10.0 < at <= 10.0 + DELTA

    def test_sender_delivers_its_own_broadcast(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng)
        service.broadcast("p0", News("x"))
        engine.run()
        assert len(membership.process("p0").heard) == 1

    def test_departed_recipient_misses(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng)
        service.broadcast("p0", News("x"))
        membership.process("p1").depart()
        membership.leave("p1", 0.0)
        engine.run()
        assert membership.process("p1").heard == []
        assert len(membership.process("p2").heard) == 1

    def test_departed_sender_rejected(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng)
        membership.process("p0").depart()
        membership.leave("p0", 0.0)
        with pytest.raises(NetworkError):
            service.broadcast("p0", News("x"))

    def test_deliveries_share_broadcast_id(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng)
        bid = service.broadcast("p0", News("x"))
        engine.run()
        delivers = trace.filter(kind=TraceKind.DELIVER)
        assert len(delivers) == 3
        assert trace.count(TraceKind.BROADCAST) == 1
        assert all(isinstance(bid, int) for _ in delivers)

    def test_broadcast_count(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng)
        service.broadcast("p0", News("a"))
        service.broadcast("p1", News("b"))
        assert service.broadcast_count == 2


class TestEntrantPolicies:
    def _enter_late(self, engine, membership):
        late = Listener("late", engine)
        membership.enter(late)
        return late

    def test_none_policy_excludes_entrants(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng, entrant_policy="none")
        service.broadcast("p0", News("x"))
        engine.run_until(1.0)
        late = self._enter_late(engine, membership)
        offered = service.offer_to_entrant(late)
        engine.run()
        assert offered == 0
        assert late.heard == []

    def test_all_policy_delivers_to_entrants_in_window(
        self, engine, membership, trace, rng
    ):
        service = build(engine, membership, trace, rng, entrant_policy="all")
        service.broadcast("p0", News("x"))
        engine.run_until(1.0)
        late = self._enter_late(engine, membership)
        offered = service.offer_to_entrant(late)
        engine.run()
        assert offered == 1
        assert len(late.heard) == 1
        _, _, at = late.heard[0]
        assert 1.0 < at <= DELTA  # still within the sender's window

    def test_entrant_after_window_misses(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng, entrant_policy="all")
        service.broadcast("p0", News("x"))
        engine.run_until(DELTA + 1.0)
        late = self._enter_late(engine, membership)
        assert service.offer_to_entrant(late) == 0

    def test_probabilistic_policy_bounds(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng, entrant_policy=0.5)
        hits = 0
        engine.run_until(1.0)
        for i in range(40):
            service.broadcast("p0", News(f"b{i}"))
        late = self._enter_late(engine, membership)
        hits = service.offer_to_entrant(late)
        assert 0 < hits < 40  # some but not all, w.h.p. at p=0.5

    def test_invalid_policy_rejected(self, engine, membership, trace, rng):
        with pytest.raises(ConfigError):
            build(engine, membership, trace, rng, entrant_policy="sometimes")
        with pytest.raises(ConfigError):
            build(engine, membership, trace, rng, entrant_policy=1.5)

    def test_entrant_not_offered_twice(self, engine, membership, trace, rng):
        service = build(engine, membership, trace, rng, entrant_policy="all")
        service.broadcast("p0", News("x"))
        engine.run_until(1.0)
        late = self._enter_late(engine, membership)
        assert service.offer_to_entrant(late) == 1
        assert service.offer_to_entrant(late) == 0  # already a recipient
