"""Smoke suite for ``examples/``: every script runs, in quick mode.

The examples are the repository's front door and its most rot-prone
code — nothing else imports them.  Each test runs one script in a
subprocess (they are top-level scripts, so importing *is* running)
with ``REPRO_EXAMPLES_QUICK=1``, which the longer simulations honour
by shrinking their horizons, and asserts a zero exit plus a line of
expected output — enough to catch an API drift or a silently broken
verdict without pinning the exact numbers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (extra argv, a fragment the output must contain).
EXAMPLES: dict[str, tuple[list[str], str]] = {
    "quickstart.py": ([], "regularity: SAFE"),
    "figure3_walkthrough.py": ([], "regularity VIOLATED"),
    "p2p_presence_board.py": ([], "presence board verdict"),
    "sharded_kv_cluster.py": ([], "cluster verdict"),
    "manet_partial_synchrony.py": ([], "convoy verdict"),
    # The one-shot reproduction driver: a single quick experiment is
    # enough to prove the driver still drives (CI runs the full
    # battery through the CLI separately).
    "reproduce_paper.py": (["--quick", "--only", "E13"], "REPRODUCED"),
}


def _run_example(script: str, extra: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLES_QUICK"] = "1"
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *extra],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(REPO_ROOT),
    )


def test_every_example_is_covered():
    """A new example must be added to the smoke table (or it can rot)."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), (
        f"examples/ and the smoke table disagree: "
        f"missing {sorted(on_disk - set(EXAMPLES))}, "
        f"stale {sorted(set(EXAMPLES) - on_disk)}"
    )


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs_clean(script):
    extra, fragment = EXAMPLES[script]
    result = _run_example(script, extra)
    assert result.returncode == 0, (
        f"{script} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    assert fragment in result.stdout, (
        f"{script} ran but its output lost {fragment!r}\n"
        f"stdout:\n{result.stdout[-2000:]}"
    )
