"""Tests for the DynamicSystem runtime façade."""

import pytest

from repro.sim.errors import ProcessError
from repro.sim.trace import TraceKind
from tests.conftest import make_system

DELTA = 5.0


class TestConstruction:
    def test_seeds_are_active_at_time_zero(self, sync_system):
        assert sync_system.now == 0.0
        assert len(sync_system.active_pids()) == 10
        assert sync_system.present_count() == 10

    def test_writer_defaults_to_first_seed(self, sync_system):
        assert sync_system.writer_pid == sync_system.seed_pids[0]

    def test_seed_pids_are_stable(self, sync_system):
        assert sync_system.seed_pids == tuple(f"p{i:04d}" for i in range(1, 11))

    def test_tracker_initial_probe(self, sync_system):
        sample = sync_system.tracker.samples[0]
        assert sample.active == 10


class TestDynamicity:
    def test_spawn_joiner_enters_listening(self, sync_system):
        pid = sync_system.spawn_joiner()
        assert sync_system.present_count() == 11
        assert pid not in sync_system.active_pids()
        assert sync_system.trace.count(TraceKind.ENTER) >= 1

    def test_leave_removes_process(self, sync_system):
        victim = sync_system.seed_pids[4]
        sync_system.leave(victim)
        assert sync_system.present_count() == 9
        assert not sync_system.membership.is_present(victim)
        assert sync_system.history.departed_at(victim) == 0.0

    def test_double_leave_rejected(self, sync_system):
        victim = sync_system.seed_pids[4]
        sync_system.leave(victim)
        with pytest.raises(ProcessError):
            sync_system.leave(victim)

    def test_leave_mid_join_abandons(self, sync_system):
        pid = sync_system.spawn_joiner()
        join = sync_system.history.joins()[0]
        sync_system.run_for(1.0)
        sync_system.leave(pid)
        sync_system.run_for(4 * DELTA)
        assert join.abandoned

    def test_next_value_is_unique(self, sync_system):
        values = {sync_system.next_value() for _ in range(100)}
        assert len(values) == 100


class TestOperations:
    def test_write_defaults_to_writer_and_auto_value(self, sync_system):
        handle = sync_system.write()
        assert handle.process_id == sync_system.writer_pid
        assert handle.argument == "w1"
        sync_system.run_for(2 * DELTA)
        assert handle.done

    def test_write_by_explicit_pid(self, sync_system):
        other = sync_system.seed_pids[3]
        handle = sync_system.write("x", pid=other)
        assert handle.process_id == other

    def test_operations_recorded_in_history(self, sync_system):
        sync_system.write("v1")
        sync_system.run_for(2 * DELTA)
        sync_system.read(sync_system.seed_pids[2])
        assert len(sync_system.history.writes()) == 1
        assert len(sync_system.history.reads()) == 1


class TestRunAndCheck:
    def test_run_until_and_run_for(self, sync_system):
        sync_system.run_until(10.0)
        assert sync_system.now == 10.0
        sync_system.run_for(5.0)
        assert sync_system.now == 15.0

    def test_close_is_idempotent(self, sync_system):
        sync_system.run_until(5.0)
        history = sync_system.close()
        assert history.horizon == 5.0
        sync_system.close()
        assert history.horizon == 5.0

    def test_check_wrappers(self, sync_system):
        sync_system.write("v1")
        sync_system.run_for(2 * DELTA)
        sync_system.read(sync_system.seed_pids[5])
        assert sync_system.check_safety().is_safe
        assert sync_system.check_atomicity().is_atomic
        assert sync_system.check_liveness().is_live

    def test_default_grace_is_three_delta(self, sync_system):
        """An operation pending for less than 3δ at the horizon is not
        stuck."""
        sync_system.run_until(10.0)
        sync_system.spawn_joiner()  # needs 3δ = 15
        sync_system.run_until(12.0)
        report = sync_system.check_liveness()
        assert report.is_live
        assert report.in_grace == 1


class TestDeterminism:
    def test_same_seed_same_run(self):
        def signature(seed):
            system = make_system(n=15, seed=seed)
            system.attach_churn(rate=0.05)
            system.write("v1")
            system.run_until(40.0)
            history = system.close()
            return (
                system.network.sent_count,
                system.network.delivered_count,
                len(history),
                tuple(
                    (op.kind, op.process_id, op.invoke_time, op.response_time)
                    for op in history
                ),
            )

        assert signature(123) == signature(123)

    def test_different_seeds_differ(self):
        def fingerprint(seed):
            system = make_system(n=15, seed=seed)
            system.attach_churn(rate=0.05)
            system.run_until(40.0)
            return system.network.sent_count

        assert fingerprint(1) != fingerprint(2)


class TestSharedEngineAndNamespace:
    """The cluster-facing constructor surface (PR 5)."""

    def test_private_engine_is_owned(self):
        system = make_system(n=3)
        assert system.owns_engine
        assert system.shard_id is None

    def test_injected_engine_is_shared_not_owned(self):
        from repro.runtime.config import SystemConfig
        from repro.runtime.system import DynamicSystem
        from repro.sim.engine import EventScheduler

        engine = EventScheduler()
        a = DynamicSystem(SystemConfig(n=3, seed=1), engine=engine, shard_id=0)
        b = DynamicSystem(SystemConfig(n=3, seed=2), engine=engine, shard_id=1)
        assert a.engine is engine and b.engine is engine
        assert not a.owns_engine and not b.owns_engine
        # Advancing the shared clock advances both populations' timers.
        a.write("x")
        b.write("y")
        engine.run_until(4 * DELTA)
        assert a.history.writes()[0].done
        assert b.history.writes()[0].done

    def test_non_owner_cannot_drive_the_shared_clock(self):
        from repro.runtime.config import SystemConfig
        from repro.runtime.system import DynamicSystem
        from repro.sim.engine import EventScheduler
        from repro.sim.errors import ConfigError

        shard = DynamicSystem(
            SystemConfig(n=3, seed=1), engine=EventScheduler(), shard_id=0
        )
        with pytest.raises(ConfigError):
            shard.run_for(10.0)
        with pytest.raises(ConfigError):
            shard.run_until(10.0)

    def test_shard_id_stamps_recorded_operations(self):
        from repro.runtime.config import SystemConfig
        from repro.runtime.system import DynamicSystem

        system = DynamicSystem(SystemConfig(n=3, seed=0), shard_id=7)
        handle = system.write("v")
        system.run_for(4 * DELTA)
        assert handle.shard == 7
        assert all(op.shard == 7 for op in system.history)

    def test_default_system_leaves_shard_unset(self):
        system = make_system(n=3)
        handle = system.write("v")
        system.run_for(4 * DELTA)
        assert handle.shard is None

    def test_pid_prefix_namespaces_every_process(self):
        from repro.runtime.config import SystemConfig
        from repro.runtime.system import DynamicSystem

        system = DynamicSystem(SystemConfig(n=3, seed=0, pid_prefix="s2.p"))
        assert system.seed_pids == ("s2.p0001", "s2.p0002", "s2.p0003")
        joiner = system.spawn_joiner()
        assert joiner == "s2.p0004"

    def test_key_set_names_the_register_space(self):
        from repro.runtime.config import SystemConfig
        from repro.runtime.system import DynamicSystem

        system = DynamicSystem(
            SystemConfig(n=3, seed=0, keys=2, key_set=("k3", "k9"))
        )
        assert system.keys == ("k3", "k9")
        handle = system.write("v", key="k9")
        system.run_for(4 * DELTA)
        assert handle.done and handle.key == "k9"
