"""Unit tests for system configuration validation."""

import pytest

from repro.net.delay import AsynchronousDelay
from repro.runtime.config import SystemConfig
from repro.sim.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = SystemConfig()
        assert config.n == 20
        assert config.protocol == "sync"

    def test_rejects_zero_population(self):
        with pytest.raises(ConfigError):
            SystemConfig(n=0)

    def test_rejects_non_positive_delta(self):
        with pytest.raises(ConfigError):
            SystemConfig(delta=0.0)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(protocol="paxos")
        assert "sync" in str(excinfo.value)  # the error lists the options

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ConfigError):
            SystemConfig(sample_period=0.0)

    def test_accepts_every_registered_protocol(self):
        from repro.protocols import PROTOCOLS

        for name in PROTOCOLS:
            assert SystemConfig(protocol=name).protocol == name

    def test_explicit_delay_model_is_kept(self):
        model = AsynchronousDelay(mean=3.0)
        assert SystemConfig(delay=model).delay is model

    def test_extra_dict_defaults_empty(self):
        assert SystemConfig().extra == {}


class TestClusterFacingFields:
    """The fields the sharded cluster derives per shard (PR 5)."""

    def test_key_tuple_default_is_historical_naming(self):
        assert SystemConfig(keys=1).key_tuple() == (None,)
        assert SystemConfig(keys=3).key_tuple() == ("k0", "k1", "k2")

    def test_key_set_overrides_naming(self):
        config = SystemConfig(keys=2, key_set=("k3", "k7"))
        assert config.key_tuple() == ("k3", "k7")

    def test_key_set_must_match_key_count(self):
        with pytest.raises(ConfigError):
            SystemConfig(keys=3, key_set=("k0",))

    def test_key_set_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            SystemConfig(keys=2, key_set=("k0", "k0"))

    def test_key_set_coerced_to_tuple(self):
        config = SystemConfig(keys=2, key_set=["a", "b"])
        assert config.key_set == ("a", "b")

    def test_pid_prefix_default_and_custom(self):
        assert SystemConfig().pid_prefix == "p"
        assert SystemConfig(pid_prefix="s3.p").pid_prefix == "s3.p"

    def test_empty_pid_prefix_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(pid_prefix="")
