"""Unit tests for system configuration validation."""

import pytest

from repro.net.delay import AsynchronousDelay
from repro.runtime.config import SystemConfig
from repro.sim.errors import ConfigError


class TestValidation:
    def test_defaults_are_valid(self):
        config = SystemConfig()
        assert config.n == 20
        assert config.protocol == "sync"

    def test_rejects_zero_population(self):
        with pytest.raises(ConfigError):
            SystemConfig(n=0)

    def test_rejects_non_positive_delta(self):
        with pytest.raises(ConfigError):
            SystemConfig(delta=0.0)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError) as excinfo:
            SystemConfig(protocol="paxos")
        assert "sync" in str(excinfo.value)  # the error lists the options

    def test_rejects_bad_sample_period(self):
        with pytest.raises(ConfigError):
            SystemConfig(sample_period=0.0)

    def test_accepts_every_registered_protocol(self):
        from repro.protocols import PROTOCOLS

        for name in PROTOCOLS:
            assert SystemConfig(protocol=name).protocol == name

    def test_explicit_delay_model_is_kept(self):
        model = AsynchronousDelay(mean=3.0)
        assert SystemConfig(delay=model).delay is model

    def test_extra_dict_defaults_empty(self):
        assert SystemConfig().extra == {}
