"""Unit tests for the mesoscale plane (repro.runtime.mesoscale).

E18 holds the plane to the exact kernel end to end; these tests pin the
individual mechanisms — mode dispatch, the bulk quorum entry point, the
cohort FIFO's conservation and eviction order, and the analytic join's
agreement with the protocol's timing — so a regression is localized
before the cross-check notices it.
"""

import pytest

from repro.churn.model import ConstantChurn
from repro.experiments.e17_population_scaling import (
    population_churn_threshold,
)
from repro.protocols.common import QuorumPhase
from repro.runtime.config import SystemConfig
from repro.runtime.mesoscale import (
    AggregatePopulation,
    MesoscaleSystem,
    make_system,
)
from repro.runtime.system import DynamicSystem
from repro.sim.errors import ConfigError


def meso_config(**overrides):
    defaults = dict(
        n=1_000, delta=5.0, protocol="sync", seed=7, trace=False,
        mode="mesoscale",
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestModeDispatch:
    def test_make_system_dispatches_on_mode(self):
        assert isinstance(make_system(meso_config()), MesoscaleSystem)
        exact = make_system(SystemConfig(n=20, protocol="sync"))
        assert type(exact) is DynamicSystem

    def test_dynamic_system_refuses_mesoscale_config(self):
        with pytest.raises(ConfigError, match="MesoscaleSystem"):
            DynamicSystem(meso_config())

    def test_mesoscale_system_refuses_exact_config(self):
        with pytest.raises(ConfigError, match="mesoscale"):
            MesoscaleSystem(SystemConfig(n=20, protocol="sync"))

    def test_envelope_is_enforced_by_config(self):
        with pytest.raises(ConfigError):
            meso_config(protocol="abd")
        with pytest.raises(ConfigError):
            meso_config(entrant_policy="all")
        with pytest.raises(ConfigError):
            meso_config(tracers=1)
        with pytest.raises(ConfigError):
            meso_config(n=16, tracers=16)


class TestRecordBulk:
    def test_bulk_count_feeds_quorum(self):
        phase = QuorumPhase(threshold=10).open()
        phase.offer("p3", ((None, "v", 2),))
        assert not phase.satisfied()
        phase.record_bulk(9)
        assert phase.count == 10
        assert phase.satisfied()

    def test_bulk_entry_competes_in_adoption(self):
        phase = QuorumPhase().open()
        phase.offer("p3", ((None, "old", 1),))
        phase.record_bulk(50, ((None, "new", 2),))
        assert phase.best_for(None) == ("new", 2)

    def test_named_sender_wins_sequence_tie_with_bulk(self):
        # The anonymous bulk entry carries sender "", which sorts below
        # every real pid — adoption stays deterministic on ties.
        phase = QuorumPhase().open()
        phase.offer("p3", ((None, "tracer-copy", 2),))
        phase.record_bulk(50, ((None, "bulk-copy", 2),))
        assert phase.best_for(None) == ("tracer-copy", 2)

    def test_open_resets_bulk_state(self):
        phase = QuorumPhase(threshold=5).open()
        phase.record_bulk(5, ((None, "v", 1),))
        phase.open()
        assert phase.count == 0
        assert phase.best_for(None) is None


class TestCohortFifo:
    def make_aggregate(self, size=100):
        system = make_system(meso_config(n=size + 16))
        return system, system.aggregate

    def test_seed_population_and_counts(self):
        system, agg = self.make_aggregate(size=100)
        assert agg.present_count == 100
        assert agg.active_count == 100
        assert system.present_count() == 116

    def test_eviction_is_fifo_and_conserves(self):
        system, agg = self.make_aggregate(size=100)
        system.run_for(1.0)
        agg.spawn_cohort(10)
        assert agg.present_count == 110
        # Quota 100 drains exactly the (older) seed cohort.
        evicted, tracers = agg.evict(100, system.engine.now)
        assert (evicted, tracers) == (100, [])
        assert agg.present_count == 10
        assert agg.active_count == 0  # survivors are the joiners

    def test_joining_members_are_evicted_before_active(self):
        system, agg = self.make_aggregate(size=100)
        system.run_for(1.0)
        agg.spawn_cohort(10)
        # Drain the seeds, activate nobody, then put a younger cohort
        # behind the joiners: intra-cohort order is joining-first.
        agg.evict(100, system.engine.now)
        system.run_for(20.0)  # the cohort's join window completes
        assert agg.active_count == 10

    def test_join_counts_respect_eligibility_cutoff(self):
        system, agg = self.make_aggregate(size=100)
        system.run_for(1.0)
        agg.spawn_cohort(10)
        system.run_for(20.0)
        joins, eligible, done = agg.join_counts(cutoff=system.engine.now)
        assert (joins, eligible, done) == (10, 10, 10)
        joins, eligible, done = agg.join_counts(cutoff=0.5)
        assert (joins, eligible) == (10, 0)


class TestMesoscaleRuns:
    def test_quiescent_run_is_conservative(self):
        system = make_system(meso_config(n=500))
        system.write()
        system.run_for(20.0)
        agg = system.aggregate
        assert system.present_count() == 500
        # Optimistic adoption: the aggregate holds the tracer's write.
        assert agg.sequence == 1
        history = system.close()
        assert system.check_safety().violation_count == 0
        assert history.joins() == []

    def test_churn_quota_parity_with_constant_churn(self):
        rate = 0.004
        system = make_system(meso_config(n=1_000))
        system.attach_churn(rate=rate, victim_policy="oldest_first")
        system.run_for(10.0)
        expected = ConstantChurn(rate=rate, n=1_000, period=1.0)
        quota = sum(expected.refreshes_for_next_tick() for _ in range(10))
        stats = system.join_stats()
        assert stats["joins"] == quota
        assert system.present_count() == 1_000

    def test_above_threshold_tracers_starve_too(self):
        n = 1_000
        cap = population_churn_threshold(n, 5.0)
        system = make_system(meso_config(n=n))
        system.attach_churn(rate=1.15 * cap, victim_policy="oldest_first")
        system.run_for(30.0)
        stats = system.join_stats()
        assert stats["eligible"] > 0
        assert stats["done_rate"] == 0.0
        # The tracer joiners (real, judged nodes) rode the same FIFO.
        tracer_joins = [
            j for j in system.history.joins()
            if j.invoke_time <= system.engine.now - 15.0
        ]
        assert tracer_joins and all(not j.done for j in tracer_joins)
        assert system.check_safety().violation_count == 0

    def test_attach_churn_guards(self):
        system = make_system(meso_config())
        with pytest.raises(ConfigError, match="oldest_first"):
            system.attach_churn(rate=0.001, victim_policy="uniform")
        with pytest.raises(ConfigError, match="constant"):
            system.attach_churn(rate=0.001, profile=object())
