"""Tests for the message-flow listing."""

from repro.faults import FaultPlan, LossFault
from repro.sim.trace import TraceLog
from repro.viz.message_flow import render_message_flow
from repro.workloads.scenarios import figure_3a
from tests.conftest import make_system


class TestMessageFlow:
    def test_lists_broadcasts_and_sends(self):
        system = make_system(n=3)
        system.write("v1")
        system.run_until(20.0)
        system.spawn_joiner()
        system.run_until(40.0)
        text = render_message_flow(system.trace)
        assert "==WriteMsg==> *" in text
        assert "==Inquiry==> *" in text
        assert "--Reply-->" in text

    def test_figure_3a_shows_the_dropped_inquiry(self):
        scenario = figure_3a()
        text = render_message_flow(scenario.system.trace)
        assert "DROPPED" in text
        assert "--Inquiry--x p0001" in text

    def test_payload_filter(self):
        system = make_system(n=3)
        system.write("v1")
        system.run_until(20.0)
        text = render_message_flow(system.trace, payload_types={"WriteMsg"})
        assert "WriteMsg" in text
        assert "Inquiry" not in text

    def test_process_filter(self):
        scenario = figure_3a()
        text = render_message_flow(scenario.system.trace, processes={"p0004"})
        for line in text.splitlines():
            assert "p0004" in line

    def test_time_window(self):
        scenario = figure_3a()
        text = render_message_flow(scenario.system.trace, start=10.4, end=12.0)
        assert "WriteMsg==> *" not in text  # broadcast was at t=10.0

    def test_limit_truncates(self):
        system = make_system(n=10)
        system.spawn_joiner()  # the inquiry draws replies from all seeds
        system.run_until(20.0)
        text = render_message_flow(system.trace, limit=2)
        assert "(truncated)" in text
        assert len(text.splitlines()) == 3

    def test_empty_result_message(self):
        system = make_system(n=3)
        system.run_until(5.0)
        text = render_message_flow(system.trace, payload_types={"Nothing"})
        assert text == "(no matching message events)"

    def test_empty_trace(self):
        assert render_message_flow(TraceLog()) == "(no matching message events)"

    def test_departed_drop_names_its_cause(self):
        scenario = figure_3a()
        text = render_message_flow(scenario.system.trace)
        assert "DROPPED (receiver left)" in text

    def test_fault_drop_names_its_reason(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"WriteMsg"}))
        system = make_system(n=3, faults=plan)
        system.write("v1")
        system.run_until(20.0)
        text = render_message_flow(system.trace)
        assert "DROPPED (fault: loss)" in text

    def test_single_record_trace(self):
        system = make_system(n=2)
        system.network.send("p0001", "p0002", "x")
        text = render_message_flow(system.trace)
        assert len(text.splitlines()) == 1
        assert "p0001" in text and "p0002" in text
