"""Tests for the ASCII space-time diagram renderer."""

import pytest

from repro.viz.timeline import TimelineError, TimelineRenderer, render_timeline
from tests.conftest import make_system

DELTA = 5.0


class TestRendering:
    def _system(self):
        system = make_system(n=3)
        system.write("v1")
        system.run_until(20.0)
        system.spawn_joiner()
        system.run_until(40.0)
        system.close()
        return system

    def test_row_per_process(self):
        system = self._system()
        text = render_timeline(system, width=40)
        lines = text.splitlines()
        assert lines[0].startswith("time")
        for pid in ("p0001", "p0002", "p0003", "p0004"):
            assert any(line.startswith(pid) for line in lines)

    def test_seed_rows_are_active(self):
        system = self._system()
        text = render_timeline(system, width=40)
        row = next(
            line for line in text.splitlines() if line.startswith("p0002")
        )
        assert "=" in row
        assert ":" not in row  # seeds never listen

    def test_joiner_shows_absent_then_join_then_active(self):
        system = self._system()
        text = render_timeline(system, width=40)
        row = next(
            line for line in text.splitlines() if line.startswith("p0004")
        )
        body = row.split(None, 1)[1]
        assert body.index(".") < body.index("J") < body.index("=")

    def test_write_marker_present(self):
        system = self._system()
        text = render_timeline(system, width=40)
        writer_row = next(
            line for line in text.splitlines() if line.startswith("p0001")
        )
        assert "W" in writer_row

    def test_leave_marker(self):
        system = make_system(n=3)
        system.run_until(10.0)
        system.leave(system.seed_pids[2])
        system.run_until(20.0)
        system.close()
        text = render_timeline(system, width=40)
        row = next(
            line for line in text.splitlines() if line.startswith("p0003")
        )
        assert "x" in row
        assert row.rstrip().endswith(".")  # absent afterwards

    def test_pid_filter(self):
        system = self._system()
        text = render_timeline(system, width=40, pids=["p0001"])
        assert "p0001" in text
        assert "p0002" not in text

    def test_legend_always_included(self):
        system = self._system()
        assert "legend:" in render_timeline(system, width=40)


class TestValidation:
    def test_unknown_pid_rejected(self):
        system = make_system(n=2)
        system.run_until(5.0)
        system.close()
        renderer = TimelineRenderer(system.membership, system.history)
        with pytest.raises(TimelineError):
            renderer.render(pids=["ghost"])

    def test_bad_width_rejected(self):
        system = make_system(n=2)
        system.close()
        with pytest.raises(TimelineError):
            TimelineRenderer(system.membership, system.history, width=3, end=1.0)

    def test_needs_an_end_time(self):
        system = make_system(n=2)
        with pytest.raises(TimelineError):
            TimelineRenderer(system.membership, system.history)

    def test_empty_window_rejected(self):
        system = make_system(n=2)
        system.close()
        with pytest.raises(TimelineError):
            TimelineRenderer(
                system.membership, system.history, start=5.0, end=5.0
            )

    def test_empty_history_renders_lifecycle_only(self):
        # No operations at all: rows show pure membership state.
        system = make_system(n=2)
        system.run_until(10.0)
        system.close()
        text = render_timeline(system, width=20)
        lines = [l for l in text.splitlines() if l.startswith("p000")]
        assert len(lines) == 2
        assert all(set(line.split()[-1]) == {"="} for line in lines)

    def test_single_operation_history(self):
        system = make_system(n=2)
        system.write("v1")
        system.run_until(10.0)
        system.close()
        text = render_timeline(system, width=20)
        (writer_row,) = [l for l in text.splitlines() if l.startswith("p0001")]
        assert "W" in writer_row

    def test_all_operations_abandoned(self):
        # Every invoker leaves mid-operation (a write and a join, the
        # two non-instantaneous kinds); markers still render and the
        # abandoned intervals extend to the end of the window.
        system = make_system(n=3)
        system.write("doomed")
        joiner = system.spawn_joiner()
        system.run_until(1.0)
        system.leave(system.writer_pid)
        system.leave(joiner)
        system.run_until(20.0)
        system.close()
        assert all(op.abandoned for op in system.history)
        text = render_timeline(system, width=40)
        rows = {l.split()[0]: l for l in text.splitlines() if l.startswith("p000")}
        # An abandoned operation has no response, so its marker extends
        # to the end of the window (and outranks the leave marker).
        assert rows["p0001"].endswith("W")
        assert rows[joiner].endswith("J")
        # A bystander that stayed renders plain active state.
        assert set(rows["p0002"].split()[-1]) == {"="}

    def test_operation_entirely_outside_the_window_is_skipped(self):
        system = make_system(n=2)
        system.run_until(30.0)
        system.write("late")
        system.run_until(40.0)
        system.close()
        text = TimelineRenderer(
            system.membership, system.history, start=0.0, end=20.0, width=20
        ).render()
        assert "W" not in text.splitlines()[1]

    def test_open_history_uses_current_time(self):
        system = make_system(n=2)
        system.run_until(10.0)
        assert render_timeline(system, width=20)  # no explicit end needed
