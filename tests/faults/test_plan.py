"""Unit tests for fault plans: validation, matching, taxonomy, serialization."""

import pytest

from repro.faults import (
    LOSS_COVER_THRESHOLD,
    CrashFault,
    DelaySpikeFault,
    FaultPlan,
    LossFault,
    PartitionFault,
)
from repro.sim.errors import ConfigError


class TestFaultValidation:
    def test_loss_probability_must_be_in_unit_interval(self):
        with pytest.raises(ConfigError):
            LossFault(probability=0.0)
        with pytest.raises(ConfigError):
            LossFault(probability=1.5)

    def test_loss_window_must_be_ordered(self):
        with pytest.raises(ConfigError):
            LossFault(probability=0.5, start=10.0, end=10.0)

    def test_partition_needs_nonempty_disjoint_groups(self):
        with pytest.raises(ConfigError):
            PartitionFault(start=0.0, end=5.0, group_a=frozenset())
        with pytest.raises(ConfigError):
            PartitionFault(
                start=0.0,
                end=5.0,
                group_a=frozenset({"a"}),
                group_b=frozenset({"a", "b"}),
            )

    def test_partition_rejects_explicit_empty_group_b(self):
        # group_b=None means "everyone else"; an explicit empty set
        # would be a silently inert fault.
        with pytest.raises(ConfigError):
            PartitionFault(
                start=0.0, end=5.0, group_a=frozenset({"a"}), group_b=frozenset()
            )

    def test_partition_mode_checked(self):
        with pytest.raises(ConfigError):
            PartitionFault(start=0.0, end=5.0, group_a=frozenset({"a"}), mode="eat")

    def test_spike_must_change_the_delay(self):
        with pytest.raises(ConfigError):
            DelaySpikeFault(factor=1.0, extra=0.0)
        with pytest.raises(ConfigError):
            DelaySpikeFault(factor=-2.0)

    def test_crash_victim_and_occurrence_checked(self):
        with pytest.raises(ConfigError):
            CrashFault(phase="WriteMsg", victim="bystander")
        with pytest.raises(ConfigError):
            CrashFault(phase="WriteMsg", occurrence=0)


class TestMatching:
    def test_loss_filters_by_window_type_and_endpoints(self):
        loss = LossFault(
            probability=0.5,
            start=10.0,
            end=20.0,
            payload_types=frozenset({"Reply"}),
            sender="a",
        )
        assert loss.matches("a", "b", "Reply", 15.0)
        assert not loss.matches("a", "b", "Reply", 5.0)  # before window
        assert not loss.matches("a", "b", "Reply", 20.0)  # end exclusive
        assert not loss.matches("a", "b", "Inquiry", 15.0)  # wrong type
        assert not loss.matches("c", "b", "Reply", 15.0)  # wrong sender

    def test_partition_severs_only_across_the_cut_while_active(self):
        part = PartitionFault(start=10.0, end=20.0, group_a=frozenset({"a", "b"}))
        assert part.severs("a", "x", 15.0)
        assert part.severs("x", "b", 15.0)  # bidirectional
        assert not part.severs("a", "b", 15.0)  # same side
        assert not part.severs("x", "y", 15.0)  # both outside group_a
        assert not part.severs("a", "x", 25.0)  # healed

    def test_two_sided_partition_ignores_third_parties(self):
        part = PartitionFault(
            start=0.0,
            end=10.0,
            group_a=frozenset({"a"}),
            group_b=frozenset({"b"}),
        )
        assert part.severs("a", "b", 5.0)
        assert not part.severs("a", "c", 5.0)  # c is in neither group

    def test_crash_matches_phase_and_pinned_pid(self):
        crash = CrashFault(phase="WriteMsg", victim="sender", pid="w")
        assert crash.matches("w", "r", "WriteMsg")
        assert not crash.matches("x", "r", "WriteMsg")
        assert not crash.matches("w", "r", "Reply")


class TestClassification:
    def test_empty_plan_is_in_model(self):
        assert FaultPlan().classify(5.0, known_bound=5.0).in_model

    def test_light_loss_is_within_the_cover_threshold(self):
        plan = FaultPlan.of(LossFault(probability=LOSS_COVER_THRESHOLD))
        assert plan.classify(5.0, known_bound=5.0).in_model

    def test_heavy_loss_is_out_of_model(self):
        verdict = FaultPlan.of(LossFault(probability=0.5)).classify(
            5.0, known_bound=5.0
        )
        assert not verdict.in_model
        assert "reliable channels" in verdict.reasons[0]

    def test_short_defer_partition_is_in_model_drop_is_not(self):
        group = frozenset({"a"})
        defer = FaultPlan.of(
            PartitionFault(start=0.0, end=4.0, group_a=group, mode="defer")
        )
        drop = FaultPlan.of(
            PartitionFault(start=0.0, end=4.0, group_a=group, mode="drop")
        )
        long_defer = FaultPlan.of(
            PartitionFault(start=0.0, end=9.0, group_a=group, mode="defer")
        )
        assert defer.classify(5.0, known_bound=5.0).in_model
        assert not drop.classify(5.0, known_bound=5.0).in_model
        assert not long_defer.classify(5.0, known_bound=5.0).in_model

    def test_spike_out_of_model_only_under_a_known_bound(self):
        plan = FaultPlan.of(DelaySpikeFault(factor=3.0))
        assert not plan.classify(5.0, known_bound=5.0).in_model
        assert plan.classify(5.0, known_bound=None).in_model

    def test_crashes_are_departures_hence_in_model(self):
        plan = FaultPlan.of(CrashFault(phase="WriteMsg", victim="sender"))
        assert plan.classify(5.0, known_bound=5.0).in_model


class TestComposition:
    def test_of_buckets_faults_by_kind(self):
        plan = FaultPlan.of(
            CrashFault(phase="WriteMsg"),
            LossFault(probability=0.2),
            PartitionFault(start=0.0, end=1.0, group_a=frozenset({"a"})),
            DelaySpikeFault(extra=2.0),
            name="mixed",
        )
        assert len(plan) == 4
        assert len(plan.losses) == 1
        assert len(plan.crashes) == 1
        assert not plan.is_empty

    def test_merged_keeps_both_plans_faults(self):
        a = FaultPlan.of(LossFault(probability=0.2), name="a")
        b = FaultPlan.of(DelaySpikeFault(extra=1.0), name="b")
        merged = a.merged(b)
        assert len(merged) == 2
        assert merged.name == "a+b"

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(name="empty"),
            FaultPlan.of(
                LossFault(
                    probability=0.3,
                    start=5.0,
                    end=9.0,
                    payload_types=frozenset({"Reply", "Inquiry"}),
                ),
                PartitionFault(
                    start=1.0,
                    end=2.0,
                    group_a=frozenset({"a", "b"}),
                    group_b=frozenset({"c"}),
                    mode="defer",
                ),
                DelaySpikeFault(start=0.0, end=10.0, factor=2.0, extra=1.0),
                CrashFault(phase="WriteMsg", victim="sender", occurrence=2, pid="w"),
                name="kitchen-sink",
            ),
        ],
    )
    def test_dict_round_trip(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"faults": [{"kind": "gremlin"}]})

    def test_from_dict_rejects_bad_fields(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"faults": [{"kind": "loss", "probability": 0.5, "colour": "red"}]}
            )
