"""Unit tests for the fault injector, standalone and inside full runs."""

from dataclasses import dataclass

import pytest

from repro.faults import (
    CrashFault,
    DelaySpikeFault,
    FaultInjector,
    FaultPlan,
    LossFault,
    PartitionFault,
)
from repro.net.delay import SynchronousDelay
from repro.net.network import Network
from repro.sim.errors import ConfigError, NetworkError
from repro.sim.process import SimProcess
from repro.sim.trace import TraceKind
from tests.conftest import make_system

DELTA = 5.0


@dataclass(frozen=True)
class Note:
    text: str


class Sink(SimProcess):
    def __init__(self, pid, engine):
        super().__init__(pid, engine)
        self.received: list[str] = []

    def on_note(self, sender, msg):
        self.received.append(msg.text)


def bare_network(engine, membership, trace, rng, plan):
    """A three-sink network with ``plan`` installed (no protocols)."""
    network = Network(engine, membership, SynchronousDelay(delta=DELTA), trace, rng)
    for pid in ("a", "b", "c"):
        membership.enter(Sink(pid, engine))
    network.install_faults(FaultInjector(plan, rng.stream("test.faults")))
    return network


class TestInstallation:
    def test_config_installs_a_plan(self):
        plan = FaultPlan.of(LossFault(probability=0.5), name="p")
        system = make_system(faults=plan)
        assert system.faults is not None
        assert system.faults.plan is plan
        assert system.network.faults is system.faults

    def test_one_injector_per_run(self):
        system = make_system(faults=FaultPlan())
        with pytest.raises(ConfigError):
            system.install_faults(FaultPlan())

    def test_network_rejects_second_injector(self):
        system = make_system(faults=FaultPlan())
        with pytest.raises(NetworkError):
            system.network.install_faults(system.faults)


class TestLoss:
    def test_total_loss_silences_point_to_point(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"Reply"}))
        system = make_system(faults=plan)
        system.spawn_joiner()  # inquiry fan-out triggers replies
        system.run_for(4 * DELTA)
        assert system.faults.lost_count > 0
        assert system.network.faulted_count == system.faults.lost_count
        # Departed-destination accounting is untouched by fault drops.
        assert system.network.dropped_count == 0

    def test_lost_messages_are_traced_with_reason(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"Reply"}))
        system = make_system(faults=plan)
        system.spawn_joiner()
        system.run_for(4 * DELTA)
        drops = system.trace.filter(TraceKind.DROP)
        assert drops and all(r.details["reason"] == "loss" for r in drops)

    def test_loss_applies_to_broadcast_deliveries_too(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"WriteMsg"}))
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        # Every fan-out instance of the dissemination was swallowed.
        assert system.faults.lost_count == 10


class TestPartition:
    def test_drop_partition_severs_both_directions(
        self, engine, membership, trace, rng
    ):
        plan = FaultPlan.of(
            PartitionFault(start=0.0, end=100.0, group_a=frozenset({"a"}), mode="drop")
        )
        net = bare_network(engine, membership, trace, rng, plan)
        net.send("a", "b", Note("x"))
        net.send("b", "a", Note("y"))
        net.send("b", "c", Note("z"))  # same side: unaffected
        engine.run()
        assert net.faults.partition_dropped_count == 2
        assert net.faulted_count == 2
        assert membership.process("c").received == ["z"]

    def test_in_flight_message_hits_partition_at_arrival(
        self, engine, membership, trace, rng
    ):
        # Partition starts after the send but before the delivery: the
        # message is swallowed at the delivery instant.
        plan = FaultPlan.of(
            PartitionFault(start=0.2, end=50.0, group_a=frozenset({"b"}), mode="drop")
        )
        net = bare_network(engine, membership, trace, rng, plan)
        message = net.send("a", "b", Note("x"))
        assert message.deliver_at > 0.2
        engine.run()
        assert net.faults.partition_dropped_count == 1
        assert membership.process("b").received == []

    def test_defer_partition_delays_until_heal_never_loses(
        self, engine, membership, trace, rng
    ):
        heal = 12.0
        plan = FaultPlan.of(
            PartitionFault(start=0.0, end=heal, group_a=frozenset({"b"}), mode="defer")
        )
        net = bare_network(engine, membership, trace, rng, plan)
        message = net.send("a", "b", Note("x"))
        assert message.deliver_at == heal
        engine.run()
        assert net.faults.deferred_count == 1
        assert net.faulted_count == 0
        assert membership.process("b").received == ["x"]

    def test_short_defer_partition_respects_the_sync_bound(
        self, engine, membership, trace, rng
    ):
        # The in-model claim: a defer partition no longer than delta
        # keeps every crossing delay within delta of the send.
        plan = FaultPlan.of(
            PartitionFault(
                start=0.0, end=0.8 * DELTA, group_a=frozenset({"b"}), mode="defer"
            )
        )
        net = bare_network(engine, membership, trace, rng, plan)
        for _ in range(20):
            message = net.send("a", "b", Note("x"))
            assert message.deliver_at - message.sent_at <= DELTA

    def test_healed_partition_lets_traffic_flow(self, engine, membership, trace, rng):
        plan = FaultPlan.of(
            PartitionFault(start=0.0, end=1.0, group_a=frozenset({"b"}), mode="drop")
        )
        net = bare_network(engine, membership, trace, rng, plan)
        engine.run_until(2.0)
        net.send("a", "b", Note("x"))
        engine.run()
        assert net.faults.partition_dropped_count == 0
        assert membership.process("b").received == ["x"]


class TestSpike:
    def test_spike_inflates_delay_inside_window(self):
        plan = FaultPlan.of(DelaySpikeFault(start=0.0, end=100.0, extra=7.0))
        system = make_system(faults=plan)
        message = system.network.send("p0001", "p0002", "x")
        assert message.delay > 7.0
        assert system.faults.spiked_count == 1

    def test_spike_window_is_exclusive_at_end(self):
        plan = FaultPlan.of(DelaySpikeFault(start=50.0, end=60.0, extra=7.0))
        system = make_system(faults=plan)
        message = system.network.send("p0001", "p0002", "x")
        assert message.delay <= DELTA
        assert system.faults.spiked_count == 0


class TestCrash:
    def test_crash_fires_at_the_kth_phase_delivery(self):
        plan = FaultPlan.of(
            CrashFault(phase="WriteMsg", victim="sender", occurrence=2)
        )
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        # The writer departed the instant its dissemination's second
        # delivery fired; the write itself was abandoned mid-flight.
        assert not system.membership.is_present(system.writer_pid)
        assert system.faults.crashes_fired == 1
        assert system.history.departed_at(system.writer_pid) is not None

    def test_crash_of_dest_drops_the_triggering_message(self):
        plan = FaultPlan.of(
            CrashFault(phase="WriteMsg", victim="dest", pid="p0003")
        )
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        assert not system.membership.is_present("p0003")
        # The delivery that pulled the trigger was then dropped at the
        # presence gate, i.e. as a departed-destination drop.
        assert system.network.dropped_count >= 1

    def test_undelivered_messages_do_not_count_toward_occurrence(
        self, engine, membership, trace, rng
    ):
        # The first two Notes to "b" never land (drop partition), so a
        # crash at the 2nd delivered Note must wait for two messages
        # that actually get through.
        crashed = []
        plan = FaultPlan.of(
            PartitionFault(start=0.0, end=10.0, group_a=frozenset({"b"}), mode="drop"),
            CrashFault(phase="Note", victim="dest", pid="b", occurrence=2),
        )
        net = bare_network(engine, membership, trace, rng, plan)
        net.faults.crash_hook = crashed.append
        net.send("a", "b", Note("eaten-1"))
        net.send("a", "b", Note("eaten-2"))
        engine.run_until(20.0)  # partition healed, nothing delivered yet
        assert net.faults.partition_dropped_count == 2
        assert crashed == []
        net.send("a", "b", Note("lands-1"))
        engine.run_until(30.0)
        assert crashed == []  # only ONE deliverable message so far
        net.send("a", "b", Note("lands-2"))
        engine.run_until(40.0)
        assert crashed == ["b"]

    def test_delivery_to_departed_dest_does_not_count_toward_occurrence(
        self, engine, membership, trace, rng
    ):
        plan = FaultPlan.of(
            CrashFault(phase="Note", victim="sender", pid="a", occurrence=2)
        )
        net = bare_network(engine, membership, trace, rng, plan)
        crashed = []
        net.faults.crash_hook = crashed.append
        net.send("a", "b", Note("never-lands"))
        membership.process("b").depart()
        membership.leave("b", 0.0)
        engine.run()
        assert net.dropped_count == 1
        net.send("a", "c", Note("lands-1"))
        engine.run()
        assert crashed == []  # the departed-dest drop did not count
        net.send("a", "c", Note("lands-2"))
        engine.run()
        assert crashed == ["a"]

    def test_crash_fires_at_most_once(self):
        plan = FaultPlan.of(
            CrashFault(phase="WriteMsg", victim="dest", pid="p0003")
        )
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        system.write("v2")
        system.run_for(3 * DELTA)
        assert system.faults.crashes_fired == 1


class TestAccounting:
    def test_counters_snapshot(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"WriteMsg"}))
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        counters = system.faults.counters()
        assert counters["lost"] == 10
        assert counters["partition_dropped"] == 0

    def test_network_repr_reports_both_drop_kinds(self):
        plan = FaultPlan.of(LossFault(probability=1.0, payload_types={"WriteMsg"}))
        system = make_system(faults=plan)
        system.write("v1")
        system.run_for(3 * DELTA)
        rendered = repr(system.network)
        assert "faulted=10" in rendered
        assert "dropped=0" in rendered
