"""Tests for the declarative, serializable cluster-wide fault plan."""

import pytest

from repro.faults import ClusterFaultPlan
from repro.faults.plan import (
    CrashFault,
    DelaySpikeFault,
    FaultPlan,
    LossFault,
    PartitionFault,
)
from repro.sim.errors import ConfigError


def kitchen_sink() -> ClusterFaultPlan:
    return ClusterFaultPlan(
        cluster_wide=FaultPlan.of(
            LossFault(
                probability=0.3,
                start=5.0,
                end=9.0,
                payload_types=frozenset({"MigFetchReply", "MigAck"}),
            ),
            DelaySpikeFault(start=0.0, end=10.0, factor=2.0, extra=1.0),
            name="soak",
        ),
        per_shard=(
            (0, FaultPlan.of(
                CrashFault(phase="MigInstall", victim="dest", occurrence=2),
                name="install-crash",
            )),
            (2, FaultPlan.of(
                PartitionFault(
                    start=1.0,
                    end=2.0,
                    group_a=frozenset({"a", "b"}),
                    group_b=frozenset({"c"}),
                    mode="defer",
                ),
                name="split",
            )),
            (0, FaultPlan.of(LossFault(probability=1.0), name="blackout")),
        ),
        name="kitchen-sink",
    )


class TestComposition:
    def test_empty_plan_is_empty(self):
        plan = ClusterFaultPlan()
        assert plan.is_empty
        assert plan.shard_indices() == ()
        assert plan.plan_for(0).is_empty

    def test_plan_for_merges_cluster_wide_then_shard_entries_in_order(self):
        plan = kitchen_sink()
        shard0 = plan.plan_for(0)
        # cluster-wide (2 faults) + install-crash (1) + blackout (1)
        assert len(shard0) == 4
        assert shard0.atomic_faults()[0] in plan.cluster_wide.atomic_faults()
        assert len(plan.plan_for(1)) == 2  # cluster-wide only
        assert len(plan.plan_for(2)) == 3

    def test_shard_indices_are_sorted_and_deduplicated(self):
        assert kitchen_sink().shard_indices() == (0, 2)

    def test_is_empty_requires_every_part_empty(self):
        assert ClusterFaultPlan(per_shard=((1, FaultPlan()),)).is_empty
        assert not ClusterFaultPlan(
            per_shard=((1, FaultPlan.of(LossFault(probability=0.1))),)
        ).is_empty


class TestValidation:
    def test_negative_shard_rejected(self):
        with pytest.raises(ConfigError):
            ClusterFaultPlan(per_shard=((-1, FaultPlan()),))

    def test_non_plan_entry_rejected(self):
        with pytest.raises(ConfigError):
            ClusterFaultPlan(per_shard=((0, LossFault(probability=0.5)),))

    def test_from_dict_rejects_missing_shard(self):
        with pytest.raises(ConfigError):
            ClusterFaultPlan.from_dict({"per_shard": [{"plan": {}}]})


class TestClassification:
    def test_out_of_model_fault_on_any_shard_taints_the_cluster(self):
        clean = ClusterFaultPlan(
            cluster_wide=FaultPlan.of(
                CrashFault(phase="MigFetchReply", victim="dest")
            )
        )
        assert clean.classify(delta=5.0).in_model
        tainted = ClusterFaultPlan(
            cluster_wide=clean.cluster_wide,
            per_shard=(
                (1, FaultPlan.of(LossFault(probability=0.9))),
            ),
        )
        verdict = tainted.classify(delta=5.0)
        assert not verdict.in_model
        assert verdict.reasons

    def test_duplicate_reasons_pool_once(self):
        lossy = FaultPlan.of(LossFault(probability=0.9))
        plan = ClusterFaultPlan(per_shard=((0, lossy), (1, lossy)))
        verdict = plan.classify(delta=5.0)
        assert len(verdict.reasons) == len(set(verdict.reasons))


class TestInstallation:
    def test_install_composes_per_shard_on_a_live_cluster(self):
        from repro.cluster import ClusterConfig, ClusterSystem
        from repro.protocols.common import MIGRATION_PAYLOADS

        cluster = ClusterSystem(
            ClusterConfig(shards=3, keys=6, n=18, delta=5.0, seed=7)
        )
        key_a = cluster.keys[0]
        dest_a = (cluster.shard_of(key_a) + 1) % 3
        # The control handoff runs entirely on unfaulted shards: its
        # source avoids key_a's blacked-out shard and it lands on dest_a.
        key_b = next(
            k for k in cluster.keys
            if cluster.shard_of(k) not in (cluster.shard_of(key_a), dest_a)
        )
        dest_b = dest_a
        plan = ClusterFaultPlan(
            per_shard=(
                (cluster.shard_of(key_a), FaultPlan.of(
                    LossFault(probability=1.0,
                              payload_types=MIGRATION_PAYLOADS),
                    name="blackout",
                )),
            ),
            name="one-shard-blackout",
        )
        injectors = cluster.install_cluster_faults(plan, scope_pids=False)
        assert len(injectors) == 1  # only the faulted shard gets one
        starved = cluster.schedule_migration(key_a, dest_a, at=20.0)
        clean = cluster.schedule_migration(key_b, dest_b, at=20.0)
        cluster.run_until(150.0)
        assert starved.aborted  # its source shard eats every MigFetch
        assert clean.committed  # untouched shards migrate normally


class TestSerialization:
    @pytest.mark.parametrize(
        "plan",
        [
            ClusterFaultPlan(name="empty"),
            kitchen_sink(),
        ],
    )
    def test_dict_round_trip(self, plan):
        assert ClusterFaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_survives_json(self):
        import json

        plan = kitchen_sink()
        payload = json.loads(json.dumps(plan.to_dict()))
        assert ClusterFaultPlan.from_dict(payload) == plan

    def test_describe_mentions_shape(self):
        assert "no faults" in ClusterFaultPlan().describe()
        text = kitchen_sink().describe()
        assert "kitchen-sink" in text
        assert "2 fault(s)" in text
        assert "3 per-shard schedule(s)" in text
