"""Unit tests for workload plan generators."""

import random

import pytest

from repro.sim.errors import ExperimentError
from repro.workloads.generators import (
    periodic_times,
    periodic_writes,
    poisson_reads,
    poisson_times,
    read_heavy_plan,
    write_heavy_plan,
)
from repro.workloads.schedule import ReadOp, WriteOp


@pytest.fixture
def rng():
    return random.Random(7)


class TestPeriodicTimes:
    def test_spacing(self):
        assert periodic_times(2.0, 3.0, 4) == [2.0, 5.0, 8.0, 11.0]

    def test_zero_count(self):
        assert periodic_times(0.0, 1.0, 0) == []

    def test_validation(self):
        with pytest.raises(ExperimentError):
            periodic_times(0.0, 0.0, 3)
        with pytest.raises(ExperimentError):
            periodic_times(0.0, 1.0, -1)


class TestPoissonTimes:
    def test_times_within_range(self, rng):
        times = poisson_times(10.0, 50.0, rate=0.5, rng=rng)
        assert all(10.0 < t < 50.0 for t in times)
        assert times == sorted(times)

    def test_rate_controls_count(self, rng):
        sparse = poisson_times(0.0, 1000.0, 0.05, random.Random(1))
        dense = poisson_times(0.0, 1000.0, 0.5, random.Random(1))
        assert len(dense) > len(sparse)

    def test_zero_rate(self, rng):
        assert poisson_times(0.0, 100.0, 0.0, rng) == []

    def test_validation(self, rng):
        with pytest.raises(ExperimentError):
            poisson_times(0.0, 10.0, -1.0, rng)
        with pytest.raises(ExperimentError):
            poisson_times(10.0, 0.0, 1.0, rng)


class TestPlans:
    def test_periodic_writes_carry_writer(self):
        plan = periodic_writes(0.0, 5.0, 3, writer="p0001")
        assert all(isinstance(op, WriteOp) for op in plan)
        assert all(op.writer == "p0001" for op in plan)
        assert all(op.value is None for op in plan)  # auto-unique values

    def test_poisson_reads_have_no_fixed_reader(self, rng):
        plan = poisson_reads(0.0, 100.0, 0.3, rng)
        assert all(isinstance(op, ReadOp) for op in plan)
        assert all(op.reader is None for op in plan)

    def test_read_heavy_plan_is_sorted_and_read_heavy(self, rng):
        plan = read_heavy_plan(0.0, 200.0, write_period=20.0, read_rate=1.0, rng=rng)
        times = [op.time for op in plan]
        assert times == sorted(times)
        reads = sum(isinstance(op, ReadOp) for op in plan)
        writes = sum(isinstance(op, WriteOp) for op in plan)
        assert reads > 5 * writes

    def test_read_heavy_plan_validation(self, rng):
        with pytest.raises(ExperimentError):
            read_heavy_plan(10.0, 10.0, 1.0, 1.0, rng)

    def test_write_heavy_plan_interleaves(self, rng):
        plan = write_heavy_plan(
            0.0, 100.0, write_period=10.0, reads_per_write=2, rng=rng
        )
        writes = sum(isinstance(op, WriteOp) for op in plan)
        reads = sum(isinstance(op, ReadOp) for op in plan)
        assert writes == 10
        assert reads <= 20
        assert [op.time for op in plan] == sorted(op.time for op in plan)
