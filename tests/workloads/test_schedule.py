"""Unit tests for the workload driver."""

import pytest

from repro.sim.errors import ExperimentError
from repro.workloads.schedule import ReadOp, WorkloadDriver, WriteOp
from tests.conftest import make_system

DELTA = 5.0


class TestWriteSerialization:
    def test_overlapping_writes_are_skipped(self):
        """The driver enforces the paper's no-concurrent-writes premise."""
        system = make_system(protocol="es", n=11)
        driver = WorkloadDriver(system)
        # ES writes take ~2 round trips; 0.1 apart guarantees overlap.
        driver.install([WriteOp(time=1.0), WriteOp(time=1.1), WriteOp(time=1.2)])
        system.run_until(40.0)
        assert driver.stats.writes_issued == 1
        assert driver.stats.writes_skipped == 2

    def test_sequential_writes_all_issue(self):
        system = make_system()
        driver = WorkloadDriver(system)
        driver.install([WriteOp(time=1.0), WriteOp(time=20.0), WriteOp(time=40.0)])
        system.run_until(60.0)
        assert driver.stats.writes_issued == 3
        assert driver.stats.writes_skipped == 0
        assert driver.stats.write_completion_rate == 1.0

    def test_departed_writer_skips(self):
        system = make_system()
        driver = WorkloadDriver(system)
        driver.install([WriteOp(time=10.0)])
        system.run_until(5.0)
        system.leave(system.writer_pid)
        system.run_until(20.0)
        assert driver.stats.writes_issued == 0
        assert driver.stats.writes_skipped == 1


class TestReaderSelection:
    def test_reads_target_active_processes(self):
        system = make_system()
        driver = WorkloadDriver(system)
        driver.install([ReadOp(time=float(t)) for t in range(1, 11)])
        system.run_until(20.0)
        assert driver.stats.reads_issued == 10
        for handle in driver.stats.read_handles:
            assert handle.done

    def test_explicit_reader_honoured(self):
        system = make_system()
        target = system.seed_pids[6]
        driver = WorkloadDriver(system)
        driver.install([ReadOp(time=1.0, reader=target)])
        system.run_until(5.0)
        assert driver.stats.read_handles[0].process_id == target

    def test_no_active_processes_skips(self):
        system = make_system(n=2)
        driver = WorkloadDriver(system)
        driver.install([ReadOp(time=10.0)])
        system.leave(system.seed_pids[0])
        system.leave(system.seed_pids[1])
        system.run_until(20.0)
        assert driver.stats.reads_skipped == 1

    def test_avoid_writer_reads(self):
        system = make_system(n=3)
        driver = WorkloadDriver(system, avoid_writer_reads=True)
        driver.install([ReadOp(time=float(t)) for t in range(1, 21)])
        system.run_until(30.0)
        readers = {h.process_id for h in driver.stats.read_handles}
        assert system.writer_pid not in readers

    def test_joining_reader_is_skipped(self):
        system = make_system()
        pid = system.spawn_joiner()
        driver = WorkloadDriver(system)
        driver.install([ReadOp(time=1.0, reader=pid)])  # still joining at t=1
        system.run_until(5.0)
        assert driver.stats.reads_skipped == 1


class TestInstallRules:
    def test_double_install_rejected(self):
        system = make_system()
        driver = WorkloadDriver(system)
        driver.install([])
        with pytest.raises(ExperimentError):
            driver.install([])

    def test_past_operation_rejected(self):
        system = make_system()
        system.run_until(10.0)
        driver = WorkloadDriver(system)
        with pytest.raises(ExperimentError):
            driver.install([ReadOp(time=5.0)])


class TestStatsProperties:
    def test_completion_rates_default_to_one(self):
        from repro.workloads.schedule import WorkloadStats

        stats = WorkloadStats()
        assert stats.read_completion_rate == 1.0
        assert stats.write_completion_rate == 1.0

    def test_completion_rates_count_done_handles(self):
        system = make_system()
        driver = WorkloadDriver(system)
        driver.install([WriteOp(time=1.0), ReadOp(time=2.0)])
        system.run_until(20.0)
        assert driver.stats.write_completion_rate == 1.0
        assert driver.stats.read_completion_rate == 1.0
