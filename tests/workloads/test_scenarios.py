"""Unit tests for the scripted scenarios and the delay-rule engine."""

from repro.workloads.scenarios import (
    DelayRule,
    ScriptedDelays,
    figure_3a,
    figure_3b,
    new_old_inversion,
)


class TestScriptedDelays:
    def test_first_match_wins(self):
        policy = ScriptedDelays(
            [
                DelayRule(payload_type="A", delay=1.0),
                DelayRule(payload_type="A", sender="x", delay=2.0),
            ],
            default=9.0,
        )

        class A:
            pass

        assert policy("x", "y", A(), 0.0) == 1.0  # first rule shadows second

    def test_fields_must_all_match(self):
        policy = ScriptedDelays(
            [DelayRule(payload_type="A", sender="s", dest="d", delay=3.0)],
            default=9.0,
        )

        class A:
            pass

        class B:
            pass

        assert policy("s", "d", A(), 0.0) == 3.0
        assert policy("s", "other", A(), 0.0) == 9.0
        assert policy("other", "d", A(), 0.0) == 9.0
        assert policy("s", "d", B(), 0.0) == 9.0

    def test_wildcards(self):
        policy = ScriptedDelays([DelayRule(delay=4.0)], default=9.0)
        assert policy("anyone", "anywhere", object(), 0.0) == 4.0


class TestScenarioReports:
    def test_figure_3a_narrative_and_handles(self):
        scenario = figure_3a()
        assert scenario.handles.keys() == {"write", "join", "read"}
        text = scenario.describe()
        assert "VIOLATED" in text
        assert "join" in text or "Join" in text

    def test_figure_3b_narrative(self):
        scenario = figure_3b()
        assert "SAFE" in scenario.describe()

    def test_inversion_scenario_handles(self):
        scenario = new_old_inversion()
        assert scenario.handles["read_new"].result == "v1"
        assert scenario.handles["read_old"].result == "v0"
        assert scenario.atomicity.is_regular_but_not_atomic

    def test_inversion_pair_identity(self):
        scenario = new_old_inversion()
        inversion = scenario.atomicity.inversions[0]
        assert inversion.earlier is scenario.handles["read_new"]
        assert inversion.later is scenario.handles["read_old"]

    def test_write_timing_matches_figure(self):
        scenario = figure_3a()
        write = scenario.handles["write"]
        assert write.invoke_time == 10.0
        assert write.response_time == 15.0  # exactly δ later

    def test_scenarios_close_their_histories(self):
        for factory in (figure_3a, figure_3b, new_old_inversion):
            scenario = factory()
            assert scenario.system.history.horizon is not None
