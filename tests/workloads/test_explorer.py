"""Unit tests for the adversarial scenario explorer."""

import json

import pytest

from repro.faults import DelaySpikeFault, FaultPlan, LossFault, PartitionFault
from repro.sim.errors import ExperimentError
from repro.workloads.explorer import (
    DEFAULT_PLAN_NAMES,
    PLAN_BUILDERS,
    ExplorationReport,
    ScenarioSpec,
    build_plan,
    classify_scenario,
    explore,
    run_scenario,
    scenario_matrix,
    shrink_plan,
)


class TestPlanLibrary:
    @pytest.mark.parametrize("name", DEFAULT_PLAN_NAMES)
    def test_every_library_plan_builds(self, name):
        plan = build_plan(name, delta=5.0, horizon=120.0, n=10)
        assert plan.name == name

    def test_unknown_plan_rejected(self):
        with pytest.raises(ExperimentError):
            build_plan("gremlins", delta=5.0, horizon=120.0, n=10)

    def test_light_loss_is_in_model_heavy_is_not(self):
        light = build_plan("light-loss", 5.0, 120.0, 10)
        heavy = build_plan("heavy-loss", 5.0, 120.0, 10)
        assert light.classify(5.0, known_bound=5.0).in_model
        assert not heavy.classify(5.0, known_bound=5.0).in_model


class TestSpecSerialization:
    def test_round_trip(self):
        spec = ScenarioSpec(
            protocol="es",
            delay="es",
            churn_rate=0.02,
            plan=build_plan("combo", 5.0, 120.0, 10),
            seed=7,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serializable(self):
        spec = ScenarioSpec(plan=build_plan("partition-drop", 5.0, 120.0, 10))
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec

    def test_sharded_spec_round_trips(self):
        spec = ScenarioSpec(shards=4, keys=8, key_dist="zipf", n=16)
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert "shards=4" in spec.label()

    def test_legacy_spec_dict_defaults_to_one_shard(self):
        payload = ScenarioSpec().to_dict()
        payload.pop("shards")
        assert ScenarioSpec.from_dict(payload).shards == 1


class TestShardedScenarios:
    def test_clean_sharded_cell_is_ok_and_reproducible(self):
        spec = ScenarioSpec(
            protocol="sync", n=16, churn_rate=0.02, seed=3,
            horizon=100.0, keys=6, key_dist="zipf", shards=3,
        )
        a = run_scenario(spec)
        b = run_scenario(spec)
        assert a.verdict == "ok"
        assert a.safe
        assert a.digest == b.digest
        assert a.network_counters == b.network_counters

    def test_sharded_heavy_loss_is_expected_breakage(self):
        spec = ScenarioSpec(
            protocol="sync", n=16, churn_rate=0.0, seed=1,
            horizon=100.0, keys=6, shards=2, read_rate=1.0,
            plan=build_plan("heavy-loss", 5.0, 100.0, 16),
        )
        outcome = run_scenario(spec)
        assert not outcome.classification.in_model
        assert outcome.fault_counters.get("lost", 0) > 0
        if outcome.violated:
            assert outcome.verdict == "expected-breakage"
        else:
            assert outcome.verdict == "near-miss"

    def test_shard_scoped_partition_preserves_group_fraction(self):
        """A library partition naming 1/3 of the total population must
        split a shard's quorum 1/3-vs-2/3, not isolate every seed of
        the (smaller) shard from its joiners."""
        from repro.workloads.explorer import _shard_scoped_plan

        plan = build_plan("partition-drop", 5.0, 120.0, 18)
        assert len(plan.partitions[0].group_a) == 6  # 1/3 of 18
        scoped = _shard_scoped_plan(plan, index=1, shard_n=6, total_n=18)
        group = scoped.partitions[0].group_a
        assert group == frozenset({"s1.p0001", "s1.p0002"})  # 1/3 of 6
        # Never the whole shard, even for a full-population group.
        full = build_plan("partition-drop", 5.0, 120.0, 3)
        wide = _shard_scoped_plan(
            full.renamed("x"), index=0, shard_n=1, total_n=3
        )
        assert len(wide.partitions[0].group_a) == 1

    def test_shard_scoped_two_group_partition_stays_disjoint(self):
        """Explicit two-group partitions rescale to disjoint ranges."""
        from repro.workloads.explorer import _shard_scoped_plan

        plan = FaultPlan.of(
            PartitionFault(
                start=0.0,
                end=10.0,
                group_a=frozenset(f"p{i:04d}" for i in range(1, 7)),
                group_b=frozenset(f"p{i:04d}" for i in range(7, 13)),
            ),
            name="two-sided",
        )
        scoped = _shard_scoped_plan(plan, index=1, shard_n=6, total_n=18)
        fault = scoped.partitions[0]
        assert fault.group_a == frozenset({"s1.p0001", "s1.p0002"})
        assert fault.group_b == frozenset({"s1.p0003", "s1.p0004"})
        # A 1-process shard cannot hold two disjoint groups: plain
        # mapping keeps the (disjoint) originals and the plan valid.
        tiny = _shard_scoped_plan(plan, index=0, shard_n=1, total_n=18)
        assert tiny.partitions[0].group_a == frozenset(
            f"s0.p{i:04d}" for i in range(1, 7)
        )

    def test_zero_shards_rejected(self):
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(shards=0))
        with pytest.raises(ExperimentError):
            explore(budget=1, shard_counts=(0,))

    def test_shard_axis_multiplies_the_matrix(self):
        specs = list(
            scenario_matrix(
                seed=0, protocols=("sync",), delays=("sync",),
                churn_rates=(0.0,), plan_names=("none",),
                seeds_per_combo=1, n=8, delta=5.0, horizon=50.0,
                key_counts=(1, 4), key_dist="uniform", shard_counts=(1, 2),
            )
        )
        assert len(specs) == 4
        assert [(s.keys, s.shards) for s in specs] == [
            (1, 1), (1, 2), (4, 1), (4, 2)
        ]


class TestClassifyScenario:
    def test_baseline_sync_scenario_is_in_model(self):
        spec = ScenarioSpec(protocol="sync", delay="sync", churn_rate=0.02)
        assert classify_scenario(spec, known_bound=5.0).in_model

    def test_sync_protocol_under_es_delays_is_out_of_model(self):
        spec = ScenarioSpec(protocol="sync", delay="es")
        verdict = classify_scenario(spec, known_bound=None)
        assert not verdict.in_model
        assert "synchronous system" in verdict.reasons[0]

    def test_abd_under_churn_is_out_of_model(self):
        spec = ScenarioSpec(protocol="abd", delay="sync", churn_rate=0.02)
        assert not classify_scenario(spec, known_bound=5.0).in_model

    def test_churn_above_the_cap_is_out_of_model(self):
        spec = ScenarioSpec(protocol="sync", delay="sync", churn_rate=0.1, delta=5.0)
        verdict = classify_scenario(spec, known_bound=5.0)
        assert not verdict.in_model
        assert any("1/(3delta)" in r for r in verdict.reasons)

    def test_long_defer_partition_breaks_the_dual_p2p_bound(self):
        # In-model under the plain sync model (duration <= delta), but
        # the dual model's tighter p2p bound (delta/2) is exceeded.
        plan = FaultPlan.of(
            PartitionFault(
                start=10.0, end=10.0 + 0.8 * 5.0, group_a=frozenset({"p0001"}),
                mode="defer",
            )
        )
        sync_spec = ScenarioSpec(protocol="sync", delay="sync", plan=plan)
        dual_spec = ScenarioSpec(protocol="sync", delay="dual", plan=plan)
        assert classify_scenario(sync_spec, known_bound=5.0).in_model
        assert not classify_scenario(dual_spec, known_bound=5.0).in_model

    def test_post_gst_spike_under_es_delays_is_out_of_model(self):
        # known_bound is None for the ES model, but eventual synchrony
        # still promises post-GST delivery within delta.
        spike = FaultPlan.of(DelaySpikeFault(start=50.0, end=60.0, factor=4.0))
        pre_gst = FaultPlan.of(DelaySpikeFault(start=0.0, end=10.0, factor=4.0))
        assert not classify_scenario(
            ScenarioSpec(protocol="es", delay="es", plan=spike), known_bound=None
        ).in_model
        assert classify_scenario(
            ScenarioSpec(protocol="es", delay="es", plan=pre_gst), known_bound=None
        ).in_model

    def test_naive_protocol_violations_count_as_bugs(self):
        # The deliberately broken protocol gets no excuse: its scenario
        # classifies in-model, so a violation reports as a bug.
        spec = ScenarioSpec(protocol="naive", delay="sync")
        assert classify_scenario(spec, known_bound=5.0).in_model


class TestRunScenario:
    def test_clean_sync_run_is_ok(self):
        outcome = run_scenario(ScenarioSpec(horizon=80.0))
        assert outcome.verdict == "ok"
        assert outcome.safe and outcome.live
        assert outcome.checked_count > 0
        assert outcome.fault_counters == {}

    def test_outcome_digest_is_reproducible(self):
        spec = ScenarioSpec(
            churn_rate=0.02, plan=build_plan("heavy-loss", 5.0, 80.0, 10), horizon=80.0
        )
        assert run_scenario(spec).digest == run_scenario(spec).digest

    def test_heavy_loss_on_sync_is_expected_breakage(self):
        spec = ScenarioSpec(
            plan=build_plan("heavy-loss", 5.0, 120.0, 10), seed=0
        )
        outcome = run_scenario(spec)
        assert outcome.violated
        assert outcome.verdict == "expected-breakage"
        assert outcome.first_violation is not None

    def test_faults_that_fire_without_violation_are_near_miss(self):
        spec = ScenarioSpec(
            churn_rate=0.02,
            plan=build_plan("light-loss", 5.0, 120.0, 10),
            seed=0,
        )
        outcome = run_scenario(spec)
        assert outcome.safe
        assert outcome.verdict == "near-miss"
        assert outcome.fault_counters["lost"] > 0

    def test_outcome_dict_is_json_serializable(self):
        outcome = run_scenario(ScenarioSpec(horizon=60.0))
        blob = json.dumps(outcome.to_dict())
        assert json.loads(blob)["verdict"] == "ok"


class TestShrinking:
    def test_combo_shrinks_to_fewer_faults(self):
        spec = ScenarioSpec(plan=build_plan("combo", 5.0, 120.0, 10), seed=0)
        assert run_scenario(spec).violated  # precondition
        shrunk, runs = shrink_plan(spec, budget=12)
        assert 0 < runs <= 12
        assert len(shrunk) < len(spec.plan)
        # The shrunk plan must still reproduce the violation.
        assert run_scenario(
            ScenarioSpec(
                protocol=spec.protocol, delay=spec.delay, seed=spec.seed, plan=shrunk
            )
        ).violated

    def test_window_bisection_narrows_a_single_fault(self):
        spec = ScenarioSpec(plan=build_plan("heavy-loss", 5.0, 120.0, 10), seed=0)
        assert run_scenario(spec).violated  # precondition
        shrunk, _ = shrink_plan(spec, budget=10)
        (loss,) = shrunk.losses
        original = spec.plan.losses[0]
        original_end = original.end if original.end is not None else spec.horizon
        assert loss.end is not None
        assert (loss.end - loss.start) < (original_end - original.start)


    def test_irrelevant_faults_shrink_to_the_empty_plan(self):
        # abd under churn violates with no faults at all, so the loss
        # fault is not part of the minimal cause and ddmin removes it.
        spec = ScenarioSpec(
            protocol="abd",
            churn_rate=0.02,
            plan=build_plan("heavy-loss", 5.0, 120.0, 10),
            seed=0,
        )
        assert run_scenario(spec).violated  # precondition
        shrunk, _ = shrink_plan(spec, budget=12)
        assert shrunk.is_empty


class TestShrunkVerdict:
    def test_shrunk_plan_is_rejudged(self):
        report = explore(
            budget=1,
            protocols=("abd",),
            delays=("sync",),
            churn_rates=(0.02,),
            plan_names=("heavy-loss",),
            shrink=True,
        )
        (outcome,) = report.outcomes
        assert outcome.verdict == "expected-breakage"
        assert outcome.shrunk_plan is not None and outcome.shrunk_plan.is_empty
        # Even minimized to nothing, the cell stays out-of-model (abd
        # under churn), so no escalation.
        assert outcome.shrunk_verdict == "expected-breakage"
        assert outcome.to_dict()["shrunk_verdict"] == "expected-breakage"
        assert report.bugs == []

    def test_an_in_model_shrunk_verdict_escalates_to_a_bug(self):
        from dataclasses import replace

        outcome = run_scenario(
            ScenarioSpec(plan=build_plan("heavy-loss", 5.0, 120.0, 10), seed=0)
        )
        assert outcome.verdict == "expected-breakage"
        report = ExplorationReport(root_seed=0, budget=1)
        report.outcomes.append(replace(outcome, shrunk_verdict="bug"))
        assert len(report.bugs) == 1


class TestExplore:
    def test_budget_truncates_the_matrix(self):
        report = explore(
            budget=3,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.0,),
            plan_names=("none", "light-loss"),
            horizon=60.0,
            shrink=False,
        )
        assert len(report.outcomes) == 2  # matrix smaller than budget
        assert report.skipped_cells == 0

    def test_truncation_is_recorded_not_silent(self):
        report = explore(
            budget=1,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.0,),
            plan_names=("none", "light-loss"),
            horizon=60.0,
            shrink=False,
        )
        assert len(report.outcomes) == 1
        assert report.skipped_cells == 1
        assert report.to_dict()["skipped_cells"] == 1
        assert "NOT run" in report.summary()

    def test_matrix_order_is_deterministic(self):
        kwargs = dict(
            seed=1,
            protocols=("sync", "es"),
            delays=("sync",),
            churn_rates=(0.0, 0.02),
            plan_names=("none",),
            seeds_per_combo=2,
            n=10,
            delta=5.0,
            horizon=60.0,
        )
        first = [s.label() for s in scenario_matrix(**kwargs)]
        second = [s.label() for s in scenario_matrix(**kwargs)]
        assert first == second
        assert len(first) == 8

    def test_report_is_reproducible(self):
        kwargs = dict(
            budget=4,
            seed=5,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.02,),
            plan_names=("heavy-loss", "none"),
            horizon=60.0,
        )
        a = explore(**kwargs).to_dict()
        b = explore(**kwargs).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_violations_collect_into_counterexamples(self):
        report = explore(
            budget=2,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.0,),
            plan_names=("partition-drop",),
            shrink=True,
        )
        payload = report.to_dict()
        assert payload["counts"].get("expected-breakage", 0) >= 1
        assert payload["counterexamples"]
        entry = payload["counterexamples"][0]
        assert entry["shrunk_plan"]["faults"]
        assert entry["classification_reasons"]

    def test_rejects_bad_budget_and_delay(self):
        with pytest.raises(ExperimentError):
            explore(budget=0)
        with pytest.raises(ExperimentError):
            explore(budget=1, delays=("warp",))

    def test_summary_mentions_counts(self):
        report = ExplorationReport(root_seed=0, budget=1)
        assert "explored 0 scenarios" in report.summary()
