"""Keyed workloads: key pickers, plan stamping, per-key serialization,
and the explorer's key-count axis."""

import random

import pytest

from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem
from repro.sim.errors import ExperimentError
from repro.workloads.explorer import ScenarioSpec, run_scenario, scenario_matrix
from repro.workloads.generators import (
    assign_keys,
    make_key_picker,
    read_heavy_plan,
    uniform_key_picker,
    zipf_key_picker,
)
from repro.workloads.schedule import ReadOp, WorkloadDriver, WriteOp

KEYS = ("k0", "k1", "k2", "k3")


class TestKeyPickers:
    def test_uniform_covers_every_key(self):
        picker = uniform_key_picker(KEYS, random.Random(1))
        drawn = {picker() for _ in range(200)}
        assert drawn == set(KEYS)

    def test_uniform_is_reproducible(self):
        a = uniform_key_picker(KEYS, random.Random(7))
        b = uniform_key_picker(KEYS, random.Random(7))
        assert [a() for _ in range(50)] == [b() for _ in range(50)]

    def test_zipf_skews_toward_the_head(self):
        picker = zipf_key_picker(KEYS, random.Random(3), exponent=1.2)
        counts = {key: 0 for key in KEYS}
        for _ in range(2000):
            counts[picker()] += 1
        assert counts["k0"] > counts["k1"] > counts["k3"]
        assert counts["k3"] > 0  # the tail is cold, not dead

    def test_zipf_exponent_zero_is_uniformish(self):
        picker = zipf_key_picker(KEYS, random.Random(3), exponent=0.0)
        counts = {key: 0 for key in KEYS}
        for _ in range(4000):
            counts[picker()] += 1
        assert max(counts.values()) < 2 * min(counts.values())

    def test_named_distributions(self):
        assert make_key_picker("uniform", KEYS, random.Random(0))() in KEYS
        assert make_key_picker("zipf", KEYS, random.Random(0))() in KEYS
        with pytest.raises(ExperimentError):
            make_key_picker("pareto", KEYS, random.Random(0))

    def test_empty_keys_rejected(self):
        with pytest.raises(ExperimentError):
            uniform_key_picker((), random.Random(0))
        with pytest.raises(ExperimentError):
            zipf_key_picker((), random.Random(0))

    def test_assign_keys_stamps_every_op_in_order(self):
        plan = read_heavy_plan(
            start=0.0, end=50.0, write_period=10.0, read_rate=0.5,
            rng=random.Random(5),
        )
        keyed = assign_keys(plan, uniform_key_picker(KEYS, random.Random(9)))
        assert len(keyed) == len(plan)
        assert all(op.key in KEYS for op in keyed)
        assert [op.time for op in keyed] == [op.time for op in plan]


class TestPerKeyWriteSerialization:
    def test_writes_to_different_keys_may_overlap(self):
        """The driver serializes writes per key, not globally: two keys
        can have in-flight writes at once, and the per-key partitioned
        history stays checkable."""
        system = DynamicSystem(
            SystemConfig(n=6, delta=5.0, protocol="sync", seed=4, keys=2)
        )
        driver = WorkloadDriver(system)
        driver.install(
            [
                WriteOp(time=1.0, key="k0"),
                WriteOp(time=2.0, key="k1"),  # k0's write is still pending
                ReadOp(time=10.0, key="k0"),
                ReadOp(time=10.0, key="k1"),
            ]
        )
        system.run_until(20.0)
        system.close()
        assert driver.stats.writes_issued == 2
        assert driver.stats.writes_skipped == 0
        assert system.check_safety().is_safe

    def test_none_key_shares_the_default_keys_slot(self):
        """In a multi-key system ``key=None`` addresses the default key
        and must share its serialization slot — not a separate one."""
        system = DynamicSystem(
            SystemConfig(n=6, delta=5.0, protocol="sync", seed=4, keys=2)
        )
        driver = WorkloadDriver(system)
        driver.install(
            [
                WriteOp(time=1.0, key=None),  # resolves to k0
                WriteOp(time=2.0, key="k0"),  # within the first's δ window
            ]
        )
        system.run_until(20.0)
        system.close()
        assert driver.stats.writes_issued == 1
        assert driver.stats.writes_skipped == 1
        assert system.check_safety().is_safe

    def test_same_key_writes_stay_serialized(self):
        system = DynamicSystem(
            SystemConfig(n=6, delta=5.0, protocol="sync", seed=4, keys=2)
        )
        driver = WorkloadDriver(system)
        driver.install(
            [
                WriteOp(time=1.0, key="k0"),
                WriteOp(time=2.0, key="k0"),  # within the first's δ window
            ]
        )
        system.run_until(20.0)
        assert driver.stats.writes_issued == 1
        assert driver.stats.writes_skipped == 1


class TestExplorerKeyAxis:
    def test_matrix_grows_by_key_counts(self):
        base = dict(
            seed=0, protocols=("sync",), delays=("sync",), churn_rates=(0.0,),
            plan_names=("none",), seeds_per_combo=1, n=6, delta=5.0,
            horizon=60.0,
        )
        single = list(scenario_matrix(**base))
        keyed = list(scenario_matrix(**base, key_counts=(1, 4)))
        assert len(keyed) == 2 * len(single)
        assert [spec.keys for spec in keyed] == [1, 4]

    def test_keyed_scenario_round_trips_and_judges_per_key(self):
        spec = ScenarioSpec(
            protocol="sync", n=8, delta=5.0, delay="sync", churn_rate=0.02,
            seed=3, horizon=90.0, keys=3, key_dist="zipf",
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        outcome = run_scenario(spec)
        assert outcome.safe
        assert "keys=3/zipf" in spec.label()

    def test_legacy_spec_dict_defaults_to_single_key(self):
        payload = ScenarioSpec().to_dict()
        del payload["keys"], payload["key_dist"]  # a pre-RegisterSpace artifact
        spec = ScenarioSpec.from_dict(payload)
        assert spec.keys == 1
        assert "keys" not in spec.label()

    def test_keys_one_cell_matches_pre_refactor_digest(self):
        """The keys=1 explorer cell must be byte-identical whether or
        not the key axis exists: same spec → same digest with keys
        explicitly 1 (the corpus-compat guarantee)."""
        base = ScenarioSpec(protocol="sync", churn_rate=0.02, seed=1)
        explicit = ScenarioSpec(
            protocol="sync", churn_rate=0.02, seed=1, keys=1, key_dist="zipf"
        )
        assert run_scenario(base).digest == run_scenario(explicit).digest
