"""Explorer regressions for the rebalance axis and its storm plans.

``rebalance=B`` puts a budget-``B`` :class:`~repro.cluster.rebalance.
Rebalancer` into the cell instead of hand-scheduled migrations — the
policy decides what moves, so a safety violation here is a
rebalancer-induced in-model bug.  These tests pin the plan library,
the spec surface (byte-compatible when the axis is unused), the
validation and matrix skip rules, and the verdicts of the pinned
rebal storms.
"""

import pytest

from repro.sim.errors import ExperimentError
from repro.workloads.explorer import (
    DEFAULT_PLAN_NAMES,
    PLAN_BUILDERS,
    VERDICT_BUG,
    ScenarioSpec,
    build_plan,
    run_scenario,
    scenario_matrix,
)


def rebal_spec(plan_name="none", **overrides) -> ScenarioSpec:
    params = dict(
        n=18, delta=5.0, churn_rate=0.02, seed=0, horizon=150.0,
        keys=6, shards=3, rebalance=2,
    )
    params.update(overrides)
    plan = build_plan(plan_name, params["delta"], params["horizon"], params["n"])
    return ScenarioSpec(plan=plan, **params)


class TestRebalancePlans:
    def test_library_offers_the_three_rebal_storm_plans(self):
        for name in ("rebal-loss", "rebal-crash", "rebal-storm"):
            assert name in PLAN_BUILDERS
            plan = build_plan(name, delta=5.0, horizon=150.0, n=18)
            assert not plan.is_empty

    def test_default_sweep_excludes_rebal_plans(self):
        assert not any(n.startswith("rebal-") for n in DEFAULT_PLAN_NAMES)
        assert set(DEFAULT_PLAN_NAMES) == {
            n for n in PLAN_BUILDERS if not n.startswith(("mig-", "rebal-"))
        }


class TestRebalanceSpecSurface:
    def test_label_and_round_trip(self):
        spec = ScenarioSpec(n=18, shards=3, keys=6, rebalance=2)
        assert " rebal=2" in spec.label()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_specs_omit_the_rebalance_field(self):
        """Zero-rebalance specs serialize byte-identically to PR 6."""
        spec = ScenarioSpec(n=18, shards=3, keys=6, migrations=2)
        assert "rebalance" not in spec.to_dict()
        assert " rebal=" not in spec.label()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_run_scenario_validates_the_rebalance_axis(self):
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(n=18, shards=3, keys=6, rebalance=-1))
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(n=18, rebalance=1))  # single shard
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(n=18, shards=3, keys=1, rebalance=1))


class TestRebalanceOutcomes:
    def test_quiet_rebalanced_cell_is_not_a_bug_and_reports_planning(self):
        outcome = run_scenario(rebal_spec("none"))
        assert outcome.verdict != VERDICT_BUG, outcome.first_violation
        assert outcome.safe
        data = outcome.to_dict()
        assert data["migrations_planned"] == outcome.migrations_planned
        resolved = outcome.migrations_committed + outcome.migrations_aborted
        assert resolved == outcome.migrations_planned

    def test_total_coordination_loss_aborts_every_policy_move(self):
        outcome = run_scenario(rebal_spec("rebal-loss"))
        assert outcome.verdict != VERDICT_BUG, outcome.first_violation
        assert outcome.migrations_committed == 0
        assert outcome.migrations_aborted == outcome.migrations_planned
        assert outcome.safe

    def test_rebalanced_cell_replays_byte_identically(self):
        a = run_scenario(rebal_spec("rebal-crash"))
        b = run_scenario(rebal_spec("rebal-crash"))
        assert a.digest == b.digest
        assert a.to_dict() == b.to_dict()

    def test_rebalance_axis_perturbs_the_digest(self):
        with_rebal = run_scenario(rebal_spec("none"))
        without = run_scenario(rebal_spec("none", rebalance=0))
        assert with_rebal.migrations_planned > 0
        assert with_rebal.digest != without.digest


class TestMatrixSkipRule:
    def test_matrix_skips_impossible_rebalance_cells(self):
        specs = list(scenario_matrix(
            seed=0,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.0,),
            plan_names=("none",),
            seeds_per_combo=1,
            n=12,
            delta=5.0,
            horizon=60.0,
            key_counts=(1, 4),
            shard_counts=(1, 2),
            rebalance_counts=(0, 2),
        ))
        rebalanced = [s for s in specs if s.rebalance]
        # Only the (keys=4, shards=2) combination can host a rebalancer.
        assert len(rebalanced) == 1
        assert (rebalanced[0].keys, rebalanced[0].shards) == (4, 2)
        assert len([s for s in specs if not s.rebalance]) == 4
