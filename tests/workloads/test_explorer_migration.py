"""Explorer regressions for the resharding axis and cluster taxonomy."""

import pytest

from repro.faults.plan import FaultPlan, LossFault
from repro.protocols.common import MIGRATION_PAYLOADS
from repro.sim.errors import ExperimentError
from repro.workloads.explorer import (
    DEFAULT_PLAN_NAMES,
    PLAN_BUILDERS,
    ScenarioSpec,
    build_plan,
    classify_scenario,
    run_scenario,
    scenario_matrix,
)


class TestMigrationPlans:
    def test_library_offers_the_four_storm_plans(self):
        for name in ("mig-crash-copy", "mig-crash-install", "mig-loss",
                     "mig-storm"):
            assert name in PLAN_BUILDERS
            plan = build_plan(name, delta=5.0, horizon=120.0, n=18)
            assert not plan.is_empty

    def test_default_sweep_excludes_migration_plans(self):
        assert not any(n.startswith("mig-") for n in DEFAULT_PLAN_NAMES)
        # But every builder outside the opt-in families (mig-, rebal-)
        # stays in.
        assert set(DEFAULT_PLAN_NAMES) == {
            n for n in PLAN_BUILDERS if not n.startswith(("mig-", "rebal-"))
        }

    def test_mig_loss_is_in_model_but_mig_storm_is_not(self):
        def spec_with(name):
            return ScenarioSpec(
                n=18, delta=5.0, shards=3, keys=6, migrations=2,
                plan=build_plan(name, 5.0, 120.0, 18),
            )

        assert classify_scenario(spec_with("mig-loss"), known_bound=5.0).in_model
        assert classify_scenario(
            spec_with("mig-crash-copy"), known_bound=5.0
        ).in_model
        storm = classify_scenario(spec_with("mig-storm"), known_bound=5.0)
        assert not storm.in_model

    def test_migration_only_losses_are_stripped_before_classification(self):
        """Losing 100% of handoff coordination traffic is in-model —
        the register protocol makes no hypothesis about it."""
        mig_only = ScenarioSpec(
            n=18, delta=5.0, shards=3, keys=6, migrations=2,
            plan=FaultPlan.of(
                LossFault(probability=1.0, payload_types=MIGRATION_PAYLOADS)
            ),
        )
        assert classify_scenario(mig_only, known_bound=5.0).in_model
        # The same loss rate over *register* traffic stays out-of-model.
        register_too = ScenarioSpec(
            n=18, delta=5.0, shards=3, keys=6, migrations=2,
            plan=FaultPlan.of(LossFault(probability=1.0)),
        )
        assert not classify_scenario(register_too, known_bound=5.0).in_model


class TestShardAwareChurnCap:
    def test_cluster_cells_use_the_smallest_shards_cap(self):
        # n=18 over 3 shards -> n_s = 6, cap = (1 - 1/6)/(3*5) ~ 0.0556.
        sharded = ScenarioSpec(n=18, delta=5.0, shards=3, keys=6,
                               churn_rate=0.056)
        verdict = classify_scenario(sharded, known_bound=5.0)
        assert not verdict.in_model
        assert any("per-shard cap" in r for r in verdict.reasons)
        # The same rate is fine for the single 18-process population
        # (cap 1/(3*5) ~ 0.0667) — the sharded cap is strictly tighter.
        single = ScenarioSpec(n=18, delta=5.0, churn_rate=0.056)
        assert classify_scenario(single, known_bound=5.0).in_model

    def test_below_the_per_shard_cap_stays_in_model(self):
        spec = ScenarioSpec(n=18, delta=5.0, shards=3, keys=6,
                            churn_rate=0.05)
        assert classify_scenario(spec, known_bound=5.0).in_model

    def test_single_population_message_text_unchanged(self):
        spec = ScenarioSpec(n=10, delta=5.0, churn_rate=0.08)
        verdict = classify_scenario(spec, known_bound=5.0)
        assert any(
            "exceeds the synchronous cap 1/(3delta)" in r
            for r in verdict.reasons
        )


class TestMigrationSpecSurface:
    def test_label_and_round_trip(self):
        spec = ScenarioSpec(n=18, shards=3, keys=6, migrations=2)
        assert " mig=2" in spec.label()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_specs_omit_the_migrations_field(self):
        """Zero-migration specs serialize byte-identically to PR 5."""
        spec = ScenarioSpec(n=18, shards=3, keys=6)
        assert "migrations" not in spec.to_dict()
        assert " mig=" not in spec.label()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_run_scenario_validates_the_migration_axis(self):
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(n=18, shards=3, keys=6, migrations=-1))
        with pytest.raises(ExperimentError):
            run_scenario(ScenarioSpec(n=18, migrations=1))  # single shard
        with pytest.raises(ExperimentError):
            run_scenario(
                ScenarioSpec(n=18, shards=3, keys=1, migrations=1)
            )  # nothing to migrate around


class TestMatrixSkipRule:
    def test_matrix_skips_impossible_migration_cells(self):
        specs = list(scenario_matrix(
            seed=0,
            protocols=("sync",),
            delays=("sync",),
            churn_rates=(0.0,),
            plan_names=("none",),
            seeds_per_combo=1,
            n=12,
            delta=5.0,
            horizon=60.0,
            key_counts=(1, 4),
            shard_counts=(1, 2),
            migration_counts=(0, 2),
        ))
        migrating = [s for s in specs if s.migrations]
        # Only the (keys=4, shards=2) combination can host a handoff.
        assert len(migrating) == 1
        assert (migrating[0].keys, migrating[0].shards) == (4, 2)
        # Zero-migration cells run at every combination regardless.
        assert len([s for s in specs if not s.migrations]) == 4
