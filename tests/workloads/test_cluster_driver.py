"""Tests for the cluster workload driver and the shard-skew picker."""

import random

import pytest

from repro.cluster import ClusterConfig, ClusterSystem
from repro.sim.errors import ExperimentError
from repro.workloads.cluster import ClusterWorkloadDriver, shard_skewed_key_picker
from repro.workloads.generators import assign_keys, read_heavy_plan
from repro.workloads.schedule import ReadOp, WriteOp


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=4, keys=8, n=16, seed=2)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


class TestDriverRouting:
    def test_ops_route_to_owning_shards(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        plan = [WriteOp(time=5.0, key=key) for key in cluster.keys]
        plan += [ReadOp(time=30.0, key=key) for key in cluster.keys]
        driver.install(plan)
        cluster.run_until(60.0)
        per_shard = driver.shard_op_counts()
        for shard in range(4):
            assert per_shard[shard] == 2 * len(cluster.keys_of_shard(shard))
        assert driver.stats.writes_issued == 8
        assert driver.stats.reads_issued == 8

    def test_none_key_goes_to_the_default_keys_shard(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        driver.install([WriteOp(time=1.0), ReadOp(time=20.0)])
        cluster.run_until(40.0)
        owner = cluster.shard_of(cluster.keys[0])
        history = cluster.close().shard_history(owner)
        assert len(history.writes()) == 1
        assert len(history.reads()) == 1
        # The key was materialized: it is the cluster default, not None.
        assert history.writes()[0].key == cluster.keys[0]

    def test_write_serialization_is_per_cluster_key(self):
        """Two writes to the same key, second while the first is still
        pending, must be skipped — even routed through the cluster."""
        cluster = make_cluster()
        key = cluster.keys[0]
        driver = ClusterWorkloadDriver(cluster)
        driver.install([WriteOp(time=1.0, key=key), WriteOp(time=1.5, key=key)])
        cluster.run_until(40.0)
        assert driver.stats.writes_issued == 1
        assert driver.stats.writes_skipped == 1

    def test_double_install_rejected(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        driver.install([])
        with pytest.raises(ExperimentError):
            driver.install([])

    def test_stats_aggregate_handles(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        plan = [WriteOp(time=2.0, key=key) for key in cluster.keys[:4]]
        driver.install(plan)
        cluster.run_until(40.0)
        stats = driver.stats
        assert len(stats.write_handles) == stats.writes_issued == 4
        assert stats.write_completion_rate == 1.0


class TestShardSkewPicker:
    def test_zipf_skew_concentrates_on_the_hot_shard(self):
        cluster = make_cluster()
        rng = random.Random(0)
        pick = shard_skewed_key_picker(cluster, rng, distribution="zipf")
        counts = {shard: 0 for shard in range(4)}
        for _ in range(2000):
            counts[cluster.shard_of(pick())] += 1
        populated = [s for s in range(4) if cluster.keys_of_shard(s)]
        hot = populated[0]
        # Rank 0 of the populated ordering is the designated hot shard.
        assert counts[hot] == max(counts.values())
        assert counts[hot] > 2000 / len(populated) * 1.5

    def test_uniform_skew_spreads_over_populated_shards(self):
        cluster = make_cluster()
        rng = random.Random(0)
        pick = shard_skewed_key_picker(cluster, rng, distribution="uniform")
        counts = {shard: 0 for shard in range(4)}
        for _ in range(2000):
            counts[cluster.shard_of(pick())] += 1
        populated = [s for s in range(4) if cluster.keys_of_shard(s)]
        for shard in populated:
            assert counts[shard] > 0

    def test_picker_only_returns_known_keys(self):
        cluster = make_cluster(shards=6, keys=3, n=12)
        rng = random.Random(1)
        pick = shard_skewed_key_picker(cluster, rng)
        for _ in range(200):
            assert pick() in cluster.keys

    def test_picker_is_deterministic(self):
        cluster = make_cluster()
        a = shard_skewed_key_picker(cluster, random.Random(7))
        b = shard_skewed_key_picker(cluster, random.Random(7))
        assert [a() for _ in range(100)] == [b() for _ in range(100)]

    def test_unknown_distribution_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ExperimentError):
            shard_skewed_key_picker(cluster, random.Random(0), distribution="pareto")


class TestEndToEnd:
    def test_skewed_read_heavy_workload_stays_regular(self):
        cluster = make_cluster()
        cluster.attach_churn(rate=0.03, min_stay=15.0)
        driver = ClusterWorkloadDriver(cluster)
        plan = read_heavy_plan(
            start=5.0,
            end=100.0,
            write_period=10.0,
            read_rate=1.0,
            rng=cluster.rng.stream("t.plan"),
        )
        plan = assign_keys(
            plan, shard_skewed_key_picker(cluster, cluster.rng.stream("t.skew"))
        )
        driver.install(plan)
        cluster.run_until(130.0)
        assert cluster.check_safety().is_safe
        assert driver.stats.reads_issued > 0
        assert driver.stats.writes_issued > 0


class TestPickerFollowsFlips:
    """Regression: the skew picker used to capture each shard's key list
    at construction, so a picker built before a migration kept routing
    hot-rank traffic by the stale pre-flip ownership.  Ownership now
    resolves at pick time."""

    @staticmethod
    def _committed_flip(cluster):
        key = cluster.keys[0]
        dest = (cluster.shard_of(key) + 1) % len(cluster.shards)
        record = cluster.schedule_migration(key, dest, at=10.0)
        cluster.run_until(60.0)
        assert record.committed
        return key, dest

    def test_pre_flip_picker_matches_post_flip_picker(self):
        """A picker built before the handoff must draw the exact same
        seeded sequence as one built after it — pick-time resolution
        makes construction order irrelevant."""
        early = make_cluster(seed=5)
        pick_early = shard_skewed_key_picker(
            early, random.Random(3), distribution="zipf"
        )
        self._committed_flip(early)
        late = make_cluster(seed=5)
        self._committed_flip(late)
        pick_late = shard_skewed_key_picker(
            late, random.Random(3), distribution="zipf"
        )
        assert [pick_early() for _ in range(300)] == [
            pick_late() for _ in range(300)
        ]

    def test_migrated_key_draws_by_its_new_shards_rank(self):
        cluster = make_cluster(seed=5)
        pick = shard_skewed_key_picker(
            cluster, random.Random(3), distribution="zipf"
        )
        key, dest = self._committed_flip(cluster)
        counts = {shard: 0 for shard in range(len(cluster.shards))}
        for _ in range(2000):
            counts[cluster.shard_of(pick())] += 1
        # Every pick routed by current ownership: the source shard (which
        # may have emptied) gets only what it still owns.
        for shard, count in counts.items():
            if not cluster.keys_of_shard(shard):
                assert count == 0

    def test_emptied_shard_falls_back_to_the_whole_key_space(self):
        """Draining a shard mid-run must not strand its skew rank: picks
        that land on an empty shard fall back to all cluster keys."""
        cluster = make_cluster(shards=3, keys=3, n=12, seed=5)
        source = cluster.shard_of(cluster.keys[0])
        dest = (source + 1) % 3
        pick = shard_skewed_key_picker(
            cluster, random.Random(3), distribution="uniform"
        )
        records = [
            cluster.schedule_migration(key, dest, at=10.0 + 40.0 * j)
            for j, key in enumerate(cluster.keys_of_shard(source))
        ]
        cluster.run_until(140.0)
        assert all(r.committed for r in records)
        assert cluster.keys_of_shard(source) == ()
        draws = [pick() for _ in range(600)]
        assert set(draws) == set(cluster.keys)
        assert all(cluster.shard_of(k) != source for k in draws)


class TestStatsAggregation:
    def test_static_stats_aggregate_every_field(self):
        """Regression: the static driver's ``stats`` summed a hand-kept
        field list that silently dropped ``writes_deferred`` (and would
        drop any future counter).  Aggregation is introspective now:
        every ``WorkloadStats`` field must survive the merge."""
        from dataclasses import fields

        from repro.workloads.schedule import WorkloadStats

        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        for index, sub in enumerate(driver.drivers):
            for field in fields(WorkloadStats):
                value = getattr(sub.stats, field.name)
                if isinstance(value, int):
                    setattr(sub.stats, field.name, index + 1)
                else:
                    value.append(object())
        total = driver.stats
        expected = sum(range(1, len(driver.drivers) + 1))
        for field in fields(WorkloadStats):
            value = getattr(total, field.name)
            if isinstance(value, int):
                assert value == expected, f"{field.name} dropped by the merge"
            else:
                assert len(value) == len(driver.drivers)

    def test_deferred_writes_surface_in_static_stats(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        driver.drivers[0].stats.writes_deferred = 7
        assert driver.stats.writes_deferred == 7
