"""Tests for the cluster workload driver and the shard-skew picker."""

import random

import pytest

from repro.cluster import ClusterConfig, ClusterSystem
from repro.sim.errors import ExperimentError
from repro.workloads.cluster import ClusterWorkloadDriver, shard_skewed_key_picker
from repro.workloads.generators import assign_keys, read_heavy_plan
from repro.workloads.schedule import ReadOp, WriteOp


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=4, keys=8, n=16, seed=2)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


class TestDriverRouting:
    def test_ops_route_to_owning_shards(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        plan = [WriteOp(time=5.0, key=key) for key in cluster.keys]
        plan += [ReadOp(time=30.0, key=key) for key in cluster.keys]
        driver.install(plan)
        cluster.run_until(60.0)
        per_shard = driver.shard_op_counts()
        for shard in range(4):
            assert per_shard[shard] == 2 * len(cluster.keys_of_shard(shard))
        assert driver.stats.writes_issued == 8
        assert driver.stats.reads_issued == 8

    def test_none_key_goes_to_the_default_keys_shard(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        driver.install([WriteOp(time=1.0), ReadOp(time=20.0)])
        cluster.run_until(40.0)
        owner = cluster.shard_of(cluster.keys[0])
        history = cluster.close().shard_history(owner)
        assert len(history.writes()) == 1
        assert len(history.reads()) == 1
        # The key was materialized: it is the cluster default, not None.
        assert history.writes()[0].key == cluster.keys[0]

    def test_write_serialization_is_per_cluster_key(self):
        """Two writes to the same key, second while the first is still
        pending, must be skipped — even routed through the cluster."""
        cluster = make_cluster()
        key = cluster.keys[0]
        driver = ClusterWorkloadDriver(cluster)
        driver.install([WriteOp(time=1.0, key=key), WriteOp(time=1.5, key=key)])
        cluster.run_until(40.0)
        assert driver.stats.writes_issued == 1
        assert driver.stats.writes_skipped == 1

    def test_double_install_rejected(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        driver.install([])
        with pytest.raises(ExperimentError):
            driver.install([])

    def test_stats_aggregate_handles(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster)
        plan = [WriteOp(time=2.0, key=key) for key in cluster.keys[:4]]
        driver.install(plan)
        cluster.run_until(40.0)
        stats = driver.stats
        assert len(stats.write_handles) == stats.writes_issued == 4
        assert stats.write_completion_rate == 1.0


class TestShardSkewPicker:
    def test_zipf_skew_concentrates_on_the_hot_shard(self):
        cluster = make_cluster()
        rng = random.Random(0)
        pick = shard_skewed_key_picker(cluster, rng, distribution="zipf")
        counts = {shard: 0 for shard in range(4)}
        for _ in range(2000):
            counts[cluster.shard_of(pick())] += 1
        populated = [s for s in range(4) if cluster.keys_of_shard(s)]
        hot = populated[0]
        # Rank 0 of the populated ordering is the designated hot shard.
        assert counts[hot] == max(counts.values())
        assert counts[hot] > 2000 / len(populated) * 1.5

    def test_uniform_skew_spreads_over_populated_shards(self):
        cluster = make_cluster()
        rng = random.Random(0)
        pick = shard_skewed_key_picker(cluster, rng, distribution="uniform")
        counts = {shard: 0 for shard in range(4)}
        for _ in range(2000):
            counts[cluster.shard_of(pick())] += 1
        populated = [s for s in range(4) if cluster.keys_of_shard(s)]
        for shard in populated:
            assert counts[shard] > 0

    def test_picker_only_returns_known_keys(self):
        cluster = make_cluster(shards=6, keys=3, n=12)
        rng = random.Random(1)
        pick = shard_skewed_key_picker(cluster, rng)
        for _ in range(200):
            assert pick() in cluster.keys

    def test_picker_is_deterministic(self):
        cluster = make_cluster()
        a = shard_skewed_key_picker(cluster, random.Random(7))
        b = shard_skewed_key_picker(cluster, random.Random(7))
        assert [a() for _ in range(100)] == [b() for _ in range(100)]

    def test_unknown_distribution_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ExperimentError):
            shard_skewed_key_picker(cluster, random.Random(0), distribution="pareto")


class TestEndToEnd:
    def test_skewed_read_heavy_workload_stays_regular(self):
        cluster = make_cluster()
        cluster.attach_churn(rate=0.03, min_stay=15.0)
        driver = ClusterWorkloadDriver(cluster)
        plan = read_heavy_plan(
            start=5.0,
            end=100.0,
            write_period=10.0,
            read_rate=1.0,
            rng=cluster.rng.stream("t.plan"),
        )
        plan = assign_keys(
            plan, shard_skewed_key_picker(cluster, cluster.rng.stream("t.skew"))
        )
        driver.install(plan)
        cluster.run_until(130.0)
        assert cluster.check_safety().is_safe
        assert driver.stats.reads_issued > 0
        assert driver.stats.writes_issued > 0
