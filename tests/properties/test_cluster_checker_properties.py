"""Merged-cluster checking ≡ per-shard single-system checking.

The acceptance property of the ShardedCluster refactor: judging a
cluster's *merged* history (``check_cluster_safety`` and friends,
which reconstruct per-shard views from the merge) must produce exactly
the verdicts of running each shard's own recorded history through the
unchanged single-system checkers — same judgements, same allowed
sets, same inversions, same liveness accounting — on randomized
multi-shard churn histories, in both fast and paranoid modes.  The
two paths share no filtering code: the merge flattens every shard's
operations into one globally ordered list and partitions it back by
shard stamp, while the reference path never leaves the shard.

A violating cluster (total write-dissemination loss injected into one
shard) additionally pins violation *localization*: the merged verdict
attributes every bad read to the faulted shard.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ClusterSystem, cluster_digest
from repro.cluster.checker import (
    check_cluster_liveness,
    check_cluster_safety,
    find_cluster_inversions,
)
from repro.core.checker import (
    LivenessChecker,
    RegularityChecker,
    find_new_old_inversions,
)
from repro.faults.plan import FaultPlan, LossFault
from repro.workloads.cluster import ClusterWorkloadDriver, shard_skewed_key_picker
from repro.workloads.generators import assign_keys, read_heavy_plan


def run_cluster(
    protocol: str,
    seed: int,
    shards: int,
    keys: int,
    churn: float,
    skew: str = "zipf",
    faulted_shard: int | None = None,
    n: int = 12,
    horizon: float = 120.0,
) -> ClusterSystem:
    cluster = ClusterSystem(
        ClusterConfig(
            shards=shards, keys=keys, n=n, delta=5.0, protocol=protocol, seed=seed
        )
    )
    if faulted_shard is not None:
        # Eat every write dissemination inside one shard: its readers
        # keep serving stale values after the write completes.
        cluster.install_faults(
            FaultPlan.of(
                LossFault(probability=1.0, payload_types=frozenset({"WriteMsg"})),
                name="eat-writes",
            ),
            shards=[faulted_shard],
        )
    if churn > 0:
        cluster.attach_churn(rate=churn, min_stay=15.0)
    driver = ClusterWorkloadDriver(cluster)
    plan = read_heavy_plan(
        start=5.0,
        end=horizon - 20.0,
        write_period=10.0,
        read_rate=1.5,
        rng=cluster.rng.stream("prop.plan"),
    )
    plan = assign_keys(
        plan,
        shard_skewed_key_picker(
            cluster, cluster.rng.stream("prop.skew"), distribution=skew
        ),
    )
    driver.install(plan)
    cluster.run_until(horizon)
    cluster.close()
    return cluster


def judgement_fingerprint(report) -> list[tuple]:
    return [
        (j.operation.op_id, getattr(j.operation, "key", None), j.returned,
         tuple(j.allowed), j.valid, j.last_completed_index)
        for j in report.judgements
    ]


def inversion_fingerprint(report) -> list[tuple]:
    return [
        (inv.earlier.op_id, inv.later.op_id,
         inv.earlier_write_index, inv.later_write_index)
        for inv in report.inversions
    ]


CASES = [
    ("sync", 0, 2, 4, 0.03, "zipf"),
    ("sync", 1, 4, 8, 0.05, "uniform"),
    ("sync", 2, 3, 2, 0.0, "zipf"),  # fewer keys than shards: idle shards
    ("es", 3, 2, 4, 0.004, "zipf"),
    ("es", 4, 3, 6, 0.0, "uniform"),
    ("abd", 5, 2, 4, 0.0, "zipf"),
]


class TestClusterCheckerEquivalence:
    @pytest.mark.parametrize("protocol,seed,shards,keys,churn,skew", CASES)
    @pytest.mark.parametrize("paranoid", [False, True])
    def test_merged_safety_equals_per_shard_checking(
        self, protocol, seed, shards, keys, churn, skew, paranoid
    ):
        cluster = run_cluster(protocol, seed, shards, keys, churn, skew)
        merged = check_cluster_safety(cluster.history, paranoid=paranoid)
        reference = []
        for shard in cluster.shards:
            report = RegularityChecker(shard.history, paranoid=paranoid).check()
            reference.extend(judgement_fingerprint(report))
        assert judgement_fingerprint(merged) == reference
        assert merged.checked_count == len(reference)

    @pytest.mark.parametrize("protocol,seed,shards,keys,churn,skew", CASES)
    @pytest.mark.parametrize("paranoid", [False, True])
    def test_merged_atomicity_equals_per_shard_checking(
        self, protocol, seed, shards, keys, churn, skew, paranoid
    ):
        cluster = run_cluster(protocol, seed, shards, keys, churn, skew)
        merged = find_cluster_inversions(cluster.history, paranoid=paranoid)
        reference_inversions = []
        reference_safe = True
        for shard in cluster.shards:
            report = find_new_old_inversions(shard.history, paranoid=paranoid)
            reference_safe = reference_safe and report.safety.is_safe
            reference_inversions.extend(inversion_fingerprint(report))
        assert merged.safety.is_safe == reference_safe
        assert inversion_fingerprint(merged) == reference_inversions

    @pytest.mark.parametrize("protocol,seed,shards,keys,churn,skew", CASES)
    def test_merged_liveness_equals_per_shard_checking(
        self, protocol, seed, shards, keys, churn, skew
    ):
        cluster = run_cluster(protocol, seed, shards, keys, churn, skew)
        merged = check_cluster_liveness(cluster.history, grace=50.0)
        completed = excused = in_grace = 0
        stuck_ids = []
        for shard in cluster.shards:
            report = LivenessChecker(shard.history, grace=50.0).check()
            completed += report.completed
            excused += report.excused
            in_grace += report.in_grace
            stuck_ids.extend(s.operation.op_id for s in report.stuck)
        assert merged.completed == completed
        assert merged.excused == excused
        assert merged.in_grace == in_grace
        assert [s.operation.op_id for s in merged.stuck] == stuck_ids

    @pytest.mark.parametrize("protocol,seed,shards,keys,churn,skew", CASES)
    def test_cluster_digest_reproducible(
        self, protocol, seed, shards, keys, churn, skew
    ):
        a = run_cluster(protocol, seed, shards, keys, churn, skew)
        b = run_cluster(protocol, seed, shards, keys, churn, skew)
        assert cluster_digest(a.history) == cluster_digest(b.history)


class TestViolationLocalization:
    @pytest.mark.parametrize("paranoid", [False, True])
    def test_faulted_shard_owns_every_violation(self, paranoid):
        """Total write loss in shard 1: the merged verdict must refute
        safety, attribute every bad read to shard 1, and agree exactly
        with checking shard 1's own history."""
        faulted = 1
        cluster = run_cluster(
            "sync", 6, 3, 6, churn=0.0, skew="uniform", faulted_shard=faulted
        )
        merged = check_cluster_safety(cluster.history, paranoid=paranoid)
        assert not merged.is_safe, (
            "eating every WriteMsg must leave stale reads behind"
        )
        assert {j.operation.shard for j in merged.violations} == {faulted}
        reference = RegularityChecker(
            cluster.shards[faulted].history, paranoid=paranoid
        ).check()
        assert [
            (j.operation.op_id, j.valid) for j in merged.violations
        ] == [(j.operation.op_id, j.valid) for j in reference.violations]
        # Every other shard is clean by itself.
        for index, shard in enumerate(cluster.shards):
            if index != faulted:
                assert RegularityChecker(shard.history).check().is_safe
