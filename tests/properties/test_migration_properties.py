"""Migration transparency: a migrated key is as correct as a static one.

The acceptance property of live resharding: running the same keyed
workload with a handoff scheduled mid-run must leave the cluster
exactly as checkable as the control run without one — safe in fast and
paranoid modes, live, with zero stuck operations — and that must hold
when the handoff is attacked at *every* phase (crash at each migration
message type, total coordination loss).  Reads are judged with full
value certification everywhere; only join snapshots on the handoff
shards are excused (a keyless join's default slot stops being a
function of the shard's own history once a key crosses the seam).
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, ClusterSystem
from repro.cluster.checker import (
    check_cluster_liveness,
    check_cluster_safety,
    find_cluster_inversions,
)
from repro.faults.plan import CrashFault, FaultPlan, LossFault
from repro.protocols.common import MIGRATION_PAYLOADS
from repro.workloads.cluster import ClusterWorkloadDriver, shard_skewed_key_picker
from repro.workloads.generators import assign_keys, read_heavy_plan

HORIZON = 150.0


def run_cluster(
    seed: int,
    migrate: bool,
    plan: FaultPlan | None = None,
    churn: float = 0.0,
    shards: int = 3,
    keys: int = 6,
    n: int = 18,
) -> tuple[ClusterSystem, list]:
    cluster = ClusterSystem(
        ClusterConfig(shards=shards, keys=keys, n=n, delta=5.0, seed=seed)
    )
    if plan is not None:
        cluster.install_faults(plan, scope_pids=False)
    if churn > 0:
        cluster.attach_churn(rate=churn, min_stay=15.0)
    records = []
    if migrate:
        for j, key in enumerate(cluster.keys[:2]):
            dest = (cluster.shard_of(key) + 1) % shards
            records.append(
                cluster.schedule_migration(
                    key, dest, at=30.0 + 25.0 * j, max_retries=1
                )
            )
    driver = ClusterWorkloadDriver(cluster, dynamic=migrate)
    workload = read_heavy_plan(
        start=5.0,
        end=HORIZON - 20.0,
        write_period=10.0,
        read_rate=1.0,
        rng=cluster.rng.stream("prop.mig.plan"),
    )
    workload = assign_keys(
        workload,
        shard_skewed_key_picker(
            cluster, cluster.rng.stream("prop.mig.skew"), distribution="uniform"
        ),
    )
    driver.install(workload)
    cluster.run_until(HORIZON)
    cluster.close()
    return cluster, records


def assert_fully_checkable(cluster: ClusterSystem) -> None:
    for paranoid in (False, True):
        report = check_cluster_safety(cluster.history, paranoid=paranoid)
        assert report.is_safe, [str(v) for v in report.violations[:3]]
        assert report.checked_count > 0
        assert find_cluster_inversions(
            cluster.history, paranoid=paranoid
        ).safety.is_safe
    liveness = check_cluster_liveness(cluster.history, grace=50.0)
    assert not liveness.stuck


CRASH_PHASES = ("MigFetch", "MigFetchReply", "MigInstall", "MigAck")


class TestMigrationTransparency:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_migrated_run_matches_unmigrated_control_verdicts(self, seed):
        control, _ = run_cluster(seed, migrate=False)
        migrated, records = run_cluster(seed, migrate=True)
        assert all(r.committed for r in records)
        assert_fully_checkable(control)
        assert_fully_checkable(migrated)
        # Same verdict surface: the handoff changed *where* operations
        # ran, never whether they are justified.
        for paranoid in (False, True):
            a = check_cluster_safety(control.history, paranoid=paranoid)
            b = check_cluster_safety(migrated.history, paranoid=paranoid)
            assert a.is_safe == b.is_safe
            assert not a.violations and not b.violations

    @pytest.mark.parametrize("seed", [0, 1])
    def test_transparent_under_churn(self, seed):
        migrated, records = run_cluster(seed, migrate=True, churn=0.02)
        assert all(r.finished for r in records)
        assert_fully_checkable(migrated)


class TestCrashAtEveryPhase:
    @pytest.mark.parametrize("phase", CRASH_PHASES)
    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_crash_at_each_phase_resolves_and_stays_safe(
        self, phase, occurrence
    ):
        plan = FaultPlan.of(
            CrashFault(phase=phase, victim="dest", occurrence=occurrence),
            name=f"crash-{phase}-{occurrence}",
        )
        cluster, records = run_cluster(0, migrate=True, plan=plan)
        for record in records:
            assert record.finished, (
                f"crash at {phase} #{occurrence} left the handoff of "
                f"{record.key!r} stuck in phase {record.phase!r}"
            )
            # Exactly one owner either way.
            owner = cluster.shard_of(record.key)
            assert owner == (record.dest if record.committed else record.source)
        assert_fully_checkable(cluster)


class TestAbortPath:
    def test_total_coordination_loss_is_a_clean_abort(self):
        plan = FaultPlan.of(
            LossFault(probability=1.0, payload_types=MIGRATION_PAYLOADS),
            name="mig-loss",
        )
        cluster, records = run_cluster(0, migrate=True, plan=plan)
        assert records and all(r.aborted for r in records)
        for record in records:
            assert cluster.shard_of(record.key) == record.source
        assert cluster.map_version == 0
        assert_fully_checkable(cluster)
