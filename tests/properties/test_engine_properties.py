"""Property-based tests for the discrete-event scheduler.

Invariants: events fire in (time, priority, sequence) order regardless
of insertion order; the clock never moves backwards; cancellation never
fires and never disturbs other events.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventScheduler

event_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),  # time
        st.integers(min_value=0, max_value=50),  # priority
    ),
    min_size=0,
    max_size=60,
)


class TestOrderingInvariants:
    @given(specs=event_specs)
    @settings(max_examples=200, deadline=None)
    def test_events_fire_in_total_order(self, specs):
        engine = EventScheduler()
        fired: list[tuple[float, int, int]] = []
        for sequence, (time, priority) in enumerate(specs):
            engine.schedule_at(
                time,
                lambda t=time, p=priority, s=sequence: fired.append((t, p, s)),
                priority=priority,
            )
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(specs)

    @given(specs=event_specs)
    @settings(max_examples=100, deadline=None)
    def test_clock_is_monotone(self, specs):
        engine = EventScheduler()
        observed: list[float] = []
        for time, priority in specs:
            engine.schedule_at(
                time, lambda: observed.append(engine.now), priority=priority
            )
        engine.run()
        assert observed == sorted(observed)

    @given(specs=event_specs, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, specs, data):
        engine = EventScheduler()
        fired: list[int] = []
        handles = []
        for index, (time, priority) in enumerate(specs):
            handles.append(
                engine.schedule_at(
                    time, lambda i=index: fired.append(i), priority=priority
                )
            )
        if handles:
            to_cancel = data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=len(handles) - 1),
                    max_size=len(handles),
                )
            )
            for index in to_cancel:
                handles[index].cancel()
        else:
            to_cancel = set()
        engine.run()
        assert set(fired) == set(range(len(specs))) - to_cancel

    @given(
        specs=event_specs,
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_run_until_splits_cleanly(self, specs, horizon):
        engine = EventScheduler()
        fired: list[float] = []
        for time, priority in specs:
            engine.schedule_at(
                time, lambda t=time: fired.append(t), priority=priority
            )
        engine.run_until(horizon)
        assert all(t <= horizon for t in fired)
        remaining = engine.pending_count
        engine.run()
        assert len(fired) == len(specs)
        assert remaining == len([t for t, _ in specs if t > horizon])
