"""Per-key checking ≡ single-register checking of each key's sub-history.

The RegisterSpace checkers partition a multi-key history by key and
judge each key's sub-history with the unchanged single-register sweep.
This suite pins that equivalence against an *independent* filter
implemented here (not via ``History.sub_history``): over randomized
multi-key churn histories, the partitioning checker's judgements must
be exactly the concatenation of single-register judgements over each
key's filtered operations — same operations, same verdicts, same
allowed sets, same inversions — in both fast and paranoid modes.
"""

from __future__ import annotations

from typing import Any

import pytest

from repro.core.checker import RegularityChecker, find_new_old_inversions
from repro.core.history import History
from repro.net.delay import AdversarialDelay, SynchronousDelay
from repro.protocols.common import JoinResult
from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem
from repro.workloads.generators import assign_keys, make_key_picker, read_heavy_plan
from repro.workloads.scenarios import DelayRule, ScriptedDelays
from repro.workloads.schedule import WorkloadDriver


class _IndependentJoinView:
    """A test-local per-key join adapter (deliberately *not* the
    library's ``_JoinKeyView``), so the equivalence below compares two
    genuinely distinct implementations of "filter by key"."""

    def __init__(self, op: Any, key: Any) -> None:
        self._op = op
        self.key = key

    @property
    def result(self) -> Any:
        result = self._op.result
        if hasattr(result, "adoptions"):
            value, sequence = result.adoptions[self.key]
            return JoinResult(value, sequence)
        return result

    def __getattr__(self, name: str) -> Any:
        return getattr(self._op, name)


def independent_sub_history(history: History, key: Any) -> History:
    """Filter a keyed history down to one key, from first principles."""
    sub = History(history.initial_value)
    for op in history:
        if op.kind == "join":
            sub.record_operation(_IndependentJoinView(op, key))
        elif op.key == key:
            sub.record_operation(op)
    if history.horizon is not None:
        sub.close(history.horizon)
    return sub


def run_keyed_history(
    protocol: str, seed: int, keys: int, key_dist: str, churn: float
) -> History:
    system = DynamicSystem(
        SystemConfig(
            n=12, delta=5.0, protocol=protocol, seed=seed, trace=False, keys=keys
        )
    )
    if churn > 0:
        system.attach_churn(rate=churn, min_stay=15.0)
    driver = WorkloadDriver(system)
    plan = read_heavy_plan(
        start=5.0,
        end=100.0,
        write_period=10.0,
        read_rate=1.0,
        rng=system.rng.stream("prop.plan"),
    )
    plan = assign_keys(
        plan, make_key_picker(key_dist, system.keys, system.rng.stream("prop.keys"))
    )
    driver.install(plan)
    system.run_until(130.0)
    return system.close()


def judgement_fingerprint(report) -> list[tuple]:
    return [
        (j.operation.op_id, getattr(j.operation, "key", None), j.returned,
         tuple(j.allowed), j.valid, j.last_completed_index)
        for j in report.judgements
    ]


def run_keyed_figure3a(seed: int = 0) -> History:
    """A keyed replay of Figure 3(a): the violation lands on one key.

    Two keys; the writer updates ``k0`` while a naive (no line-02 wait)
    joiner inquires under the figure's adversarial schedule, adopts the
    stale ``k0`` value and serves it to a read — a regularity violation
    confined to ``k0``'s sub-history while ``k1`` stays clean.
    """
    delta = 5.0
    rules = [
        DelayRule(payload_type="WriteMsg", delay=delta),
        DelayRule(payload_type="Inquiry", dest="p0002", delay=0.5),
        DelayRule(payload_type="Inquiry", dest="p0003", delay=0.5),
        DelayRule(payload_type="Inquiry", dest="p0001", delay=delta),
        DelayRule(payload_type="Reply", delay=0.5),
    ]
    system = DynamicSystem(
        SystemConfig(
            n=3,
            delta=delta,
            protocol="naive",
            delay=AdversarialDelay(
                ScriptedDelays(rules, default=1.0),
                fallback=SynchronousDelay(delta),
            ),
            seed=seed,
            keys=2,
        )
    )
    system.run_until(10.0)
    write = system.write("v1", key="k0")
    system.run_until(10.5)
    joiner = system.spawn_joiner()
    system.run_until(15.2)
    assert write.done
    system.leave(system.writer_pid)
    system.run_until(27.0)
    system.read(joiner, key="k0")
    system.read(joiner, key="k1")
    system.run_until(30.0)
    return system.close()


CASES = [
    ("sync", 0, 2, "uniform", 0.03),
    ("sync", 1, 3, "zipf", 0.05),
    ("sync", 2, 5, "zipf", 0.0),
    ("naive", 3, 3, "uniform", 0.08),
    ("es", 4, 2, "uniform", 0.004),
    ("es", 5, 4, "zipf", 0.0),
]


class TestKeyedCheckerEquivalence:
    @pytest.mark.parametrize("protocol,seed,keys,key_dist,churn", CASES)
    @pytest.mark.parametrize("paranoid", [False, True])
    def test_partitioned_safety_equals_filtered_single_register(
        self, protocol, seed, keys, key_dist, churn, paranoid
    ):
        history = run_keyed_history(protocol, seed, keys, key_dist, churn)
        assert len(history.keys()) > 1, "the workload must actually be keyed"
        keyed = RegularityChecker(history, paranoid=paranoid).check()
        manual = []
        for key in history.keys():
            sub = independent_sub_history(history, key)
            report = RegularityChecker(sub, paranoid=paranoid).check()
            manual.extend(judgement_fingerprint(report))
        assert judgement_fingerprint(keyed) == manual

    @pytest.mark.parametrize("protocol,seed,keys,key_dist,churn", CASES)
    def test_partitioned_atomicity_equals_filtered_single_register(
        self, protocol, seed, keys, key_dist, churn
    ):
        history = run_keyed_history(protocol, seed, keys, key_dist, churn)
        keyed = find_new_old_inversions(history)
        manual_inversions = []
        manual_safe = True
        for key in history.keys():
            sub = independent_sub_history(history, key)
            report = find_new_old_inversions(sub)
            manual_safe = manual_safe and report.safety.is_safe
            manual_inversions.extend(
                (inv.earlier.op_id, inv.later.op_id,
                 inv.earlier_write_index, inv.later_write_index)
                for inv in report.inversions
            )
        assert keyed.safety.is_safe == manual_safe
        assert [
            (inv.earlier.op_id, inv.later.op_id,
             inv.earlier_write_index, inv.later_write_index)
            for inv in keyed.inversions
        ] == manual_inversions

    def test_keyed_figure3a_violation_lands_on_the_written_key(self):
        """A broken run's violations must be attributed per key: the
        keyed Figure 3(a) replay violates on ``k0`` and only ``k0``."""
        history = run_keyed_figure3a()
        report = RegularityChecker(history).check()
        assert not report.is_safe, "the naive keyed joiner must serve stale k0"
        assert {j.operation.key for j in report.violations} == {"k0"}
        # The independent filter agrees key by key.
        k0 = RegularityChecker(independent_sub_history(history, "k0")).check()
        k1 = RegularityChecker(independent_sub_history(history, "k1")).check()
        assert not k0.is_safe
        assert k1.is_safe
        assert {j.operation.op_id for j in report.violations} == {
            j.operation.op_id for j in k0.violations
        }

    def test_single_key_history_is_not_partitioned(self):
        """keys=1 must take the classic path (one key, [None])."""
        system = DynamicSystem(
            SystemConfig(n=8, delta=5.0, protocol="sync", seed=9, trace=False)
        )
        system.write("v1")
        system.run_for(10.0)
        system.read(system.active_pids()[2])
        history = system.close()
        assert history.keys() == [None]
        assert not history.is_keyed
        assert RegularityChecker(history).check().is_safe
