"""Property tests for the fault subsystem.

Three families of claims:

* **In-model robustness** — with faults confined to the model's
  assumptions (loss at or below the broadcast-cover threshold,
  defer-partitions shorter than the synchronous bound, crash-style
  departures), regularity still holds across all three protocols.
  Violating one of these cases would be a genuine protocol bug, not an
  expected breakage.
* **Fault-schedule determinism** — the same seed replays the exact
  same fault schedule: byte-identical history digests across repeated
  runs, for every library plan.
* **Gate transparency** — a run with no fault plan is byte-identical
  to the pre-faults kernel (the pinned PR 1 digest), and installing an
  *empty* plan draws no randomness, so it is byte-identical too.
"""

import pytest

from repro.bench import history_digest
from repro.core.history import operation_digest
from repro.faults import CrashFault, FaultPlan, LossFault, PartitionFault
from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem
from repro.workloads.explorer import ScenarioSpec, build_plan, run_scenario

DELTA = 5.0

#: The fixed-seed determinism digest recorded in BENCH_kernel.json by
#: PR 1, before the fault subsystem existed.  A no-fault-plan run must
#: keep reproducing it byte for byte; only a PR that *intentionally*
#: changes scheduling, RNG draws or churn accounting may update it
#: (and must say so, per ROADMAP "Reading BENCH_kernel.json").
PRE_FAULTS_DIGEST = "4fbcfd6718e796c7ef1915dd1c8cb203925addac878fb1e7df84b25321e39d50"


def in_model_plan(n: int) -> FaultPlan:
    """Loss below the cover threshold, a defer partition shorter than
    delta, and a crash — all inside the paper's assumptions."""
    return FaultPlan.of(
        LossFault(probability=0.05, payload_types=frozenset({"Reply"})),
        PartitionFault(
            start=40.0,
            end=40.0 + 0.8 * DELTA,
            group_a=frozenset(f"p{i:04d}" for i in range(2, 2 + max(1, n // 3))),
            mode="defer",
        ),
        CrashFault(phase="WriteMsg", victim="dest", pid=f"p{n:04d}", occurrence=2),
        name="in-model-mix",
    )


def run_faulted(protocol: str, n: int, seed: int, plan: FaultPlan | None):
    """A churny read-heavy run with ``plan`` installed; returns the system."""
    system = DynamicSystem(
        SystemConfig(
            n=n, delta=DELTA, protocol=protocol, seed=seed, trace=False, faults=plan
        )
    )
    # ABD assumes a static universe, so only the dynamic protocols churn.
    if protocol != "abd":
        system.attach_churn(rate=0.02, min_stay=3.0 * DELTA)
    pending_write = None
    for _ in range(8):
        # Serialize writes like the workload driver does: quorum writes
        # can outlive the round under faults, and the checkers require
        # non-overlapping write intervals.
        if (
            pending_write is None or not pending_write.pending
        ) and system.membership.is_present(system.writer_pid):
            pending_write = system.write()
        system.run_for(8.0)
        for pid in system.active_pids()[:4]:
            system.read(pid)
        system.run_for(4.0)
    system.close()
    return system


class TestInModelFaultsPreserveRegularity:
    """Verified over pinned seeds: the plan's classification says
    in-model, and the checkers agree the history stays regular."""

    @pytest.mark.parametrize("protocol,n", [("sync", 15), ("es", 15), ("abd", 15)])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_regularity_holds_under_in_model_faults(self, protocol, n, seed):
        plan = in_model_plan(n)
        assert plan.classify(DELTA, known_bound=DELTA).in_model
        system = run_faulted(protocol, n, seed, plan)
        assert system.faults is not None
        report = system.check_safety()
        assert report.is_safe, (
            f"in-model faults broke regularity on {protocol} seed {seed}: "
            f"{report.violations[0].explanation}"
        )

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_in_model_faults_actually_fired(self, seed):
        # Guard against the property passing vacuously.
        system = run_faulted("sync", 15, seed, in_model_plan(15))
        counters = system.faults.counters()
        assert counters["lost"] + counters["deferred"] + counters["crashes_fired"] > 0

    def test_explorer_agrees_for_the_in_model_library_plans(self):
        for name in ("light-loss", "partition-defer", "writer-crash"):
            spec = ScenarioSpec(
                protocol="sync",
                delay="sync",
                churn_rate=0.02,
                plan=build_plan(name, DELTA, 120.0, 10),
                seed=0,
            )
            outcome = run_scenario(spec)
            assert outcome.classification.in_model
            assert outcome.safe, f"plan {name} violated regularity"


class TestFaultScheduleDeterminism:
    @pytest.mark.parametrize(
        "plan_name",
        ["light-loss", "heavy-loss", "partition-drop", "delay-spike", "writer-crash"],
    )
    def test_same_seed_same_history_digest(self, plan_name):
        plan = build_plan(plan_name, DELTA, 120.0, 15)
        digests = {
            operation_digest(run_faulted("sync", 15, 9, plan).history)
            for _ in range(2)
        }
        assert len(digests) == 1

    def test_different_seeds_draw_different_schedules(self):
        plan = build_plan("heavy-loss", DELTA, 120.0, 15)
        a = operation_digest(run_faulted("sync", 15, 9, plan).history)
        b = operation_digest(run_faulted("sync", 15, 10, plan).history)
        assert a != b

    def test_faulted_counters_are_reproducible(self):
        plan = build_plan("heavy-loss", DELTA, 120.0, 15)
        first = run_faulted("sync", 15, 9, plan)
        second = run_faulted("sync", 15, 9, plan)
        assert first.faults.counters() == second.faults.counters()
        assert first.network.faulted_count == second.network.faulted_count


class TestGateTransparency:
    def test_no_plan_reproduces_the_pre_faults_digest(self):
        assert history_digest() == PRE_FAULTS_DIGEST

    def test_empty_plan_is_byte_identical_to_no_plan(self):
        assert history_digest(faults=FaultPlan(name="empty")) == PRE_FAULTS_DIGEST

    def test_idle_plan_is_byte_identical_to_no_plan(self):
        # A plan whose only fault can never match (window beyond the
        # horizon) draws no randomness and must not perturb the run.
        idle = FaultPlan.of(
            PartitionFault(start=1e9, end=2e9, group_a=frozenset({"p0001"})),
            name="idle",
        )
        assert history_digest(faults=idle) == PRE_FAULTS_DIGEST

    def test_active_plan_changes_the_digest(self):
        # Sanity check that the digest is actually sensitive to faults.
        plan = build_plan("heavy-loss", DELTA, 120.0, 15)
        assert history_digest(faults=plan) != PRE_FAULTS_DIGEST
