"""Batched vs per-event delivery must be observably byte-identical.

The batched kernel (``batch_delivery=True``, the default) schedules one
heap entry per distinct arrival instant carrying the whole destination
vector; the legacy kernel schedules one ``Event`` + ``Message`` per
recipient.  The contract of the refactor is that the two are
*indistinguishable* from outside the scheduler: same operation digest,
same trace record sequence, same delivery/drop/fault counters — across
every protocol, under churn, and under fault plans.

These tests drive the identical workload through both kernels and
compare the full observable surface.  Any divergence here means the
batching changed semantics, not just speed — a hard failure.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import operation_digest
from repro.faults.plan import FaultPlan, LossFault, PartitionFault
from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem

#: The fault plans of the grid (``None`` = fault-free).  Loss exercises
#: the on-transmit gate; the partition exercises delivery-time severing
#: (both the drop and the deferred-heal arm).
FAULT_PLANS = {
    "none": None,
    "loss": FaultPlan.of(
        LossFault(probability=0.3, start=10.0, end=60.0), name="loss"
    ),
    "partition": FaultPlan.of(
        PartitionFault(
            start=20.0, end=24.0, group_a=frozenset({"p0001", "p0002"})
        ),
        name="partition",
    ),
    "defer": FaultPlan.of(
        PartitionFault(
            start=15.0,
            end=19.0,
            group_a=frozenset({"p0003"}),
            mode="defer",
        ),
        name="defer",
    ),
}


def _drive(
    batch: bool,
    *,
    protocol: str = "sync",
    seed: int = 11,
    churn_rate: float = 0.0,
    fault_key: str = "none",
    trace: bool = False,
    n: int = 12,
    batch_dispatch: bool = True,
    queue: str = "heap",
) -> DynamicSystem:
    """One fixed workload through the chosen kernel; returns the system
    still open (callers pick their observation surface)."""
    system = DynamicSystem(
        SystemConfig(
            n=n,
            delta=5.0,
            protocol=protocol,
            seed=seed,
            trace=trace,
            faults=FAULT_PLANS[fault_key],
            batch_delivery=batch,
            batch_dispatch=batch_dispatch,
            queue=queue,
        )
    )
    if churn_rate:
        system.attach_churn(rate=churn_rate, min_stay=12.0)
    for _ in range(4):
        system.write()
        system.run_for(8.0)
        for pid in system.active_pids()[:3]:
            system.read(pid)
        system.run_for(4.0)
    return system


def _surface(system: DynamicSystem) -> dict:
    """Everything an outside observer can see, in one comparable dict."""
    network = system.network
    return {
        "digest": operation_digest(system.close()),
        "sent": network.sent_count,
        "delivered": network.delivered_count,
        "dropped": network.dropped_count,
        "faulted": network.faulted_count,
        "fired": system.engine.fired_count,
        "now": system.engine.now,
        "present": system.present_count(),
    }


class TestKernelParityGrid:
    """The protocol × churn × fault-plan grid, both kernels."""

    @pytest.mark.parametrize("protocol", ["sync", "es", "abd"])
    @pytest.mark.parametrize("churn_rate", [0.0, 0.08])
    def test_protocols_under_churn(self, protocol, churn_rate):
        batched = _surface(
            _drive(True, protocol=protocol, churn_rate=churn_rate)
        )
        legacy = _surface(
            _drive(False, protocol=protocol, churn_rate=churn_rate)
        )
        assert batched == legacy

    @pytest.mark.parametrize("fault_key", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("churn_rate", [0.0, 0.08])
    def test_fault_plans_under_churn(self, fault_key, churn_rate):
        batched = _surface(
            _drive(True, fault_key=fault_key, churn_rate=churn_rate)
        )
        legacy = _surface(
            _drive(False, fault_key=fault_key, churn_rate=churn_rate)
        )
        assert batched == legacy

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_seed_sweep_with_churn_and_loss(self, seed):
        batched = _surface(
            _drive(True, seed=seed, churn_rate=0.1, fault_key="loss")
        )
        legacy = _surface(
            _drive(False, seed=seed, churn_rate=0.1, fault_key="loss")
        )
        assert batched == legacy


class TestDispatchParityGrid:
    """The PR 9 axis: wave/batch dispatch vs per-event handler dispatch.

    ``batch_dispatch=True`` (the default) routes deliveries through the
    wave-handler plane — aggregated same-payload bodies, inline reply
    pushes, cached replies; ``False`` keeps the per-delivery
    ``on_<type>`` dispatch.  Both must be byte-identical to each other
    AND to the PR 8 batched kernel and the legacy per-event kernel:
    every (batch_delivery, batch_dispatch) combination is one observably
    identical machine.
    """

    @pytest.mark.parametrize("protocol", ["sync", "es", "abd"])
    @pytest.mark.parametrize("churn_rate", [0.0, 0.08])
    def test_protocols_under_churn(self, protocol, churn_rate):
        surfaces = [
            _surface(
                _drive(
                    batch,
                    protocol=protocol,
                    churn_rate=churn_rate,
                    batch_dispatch=dispatch,
                )
            )
            for batch in (True, False)
            for dispatch in (True, False)
        ]
        assert surfaces[0] == surfaces[1] == surfaces[2] == surfaces[3]

    @pytest.mark.parametrize("fault_key", sorted(FAULT_PLANS))
    def test_fault_plans(self, fault_key):
        waved = _surface(
            _drive(
                True, fault_key=fault_key, churn_rate=0.08, batch_dispatch=True
            )
        )
        plain = _surface(
            _drive(
                True, fault_key=fault_key, churn_rate=0.08, batch_dispatch=False
            )
        )
        assert waved == plain

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    @pytest.mark.parametrize("protocol", ["sync", "es"])
    def test_seed_sweep_with_churn(self, seed, protocol):
        waved = _surface(
            _drive(
                True,
                protocol=protocol,
                seed=seed,
                churn_rate=0.1,
                batch_dispatch=True,
            )
        )
        plain = _surface(
            _drive(
                True,
                protocol=protocol,
                seed=seed,
                churn_rate=0.1,
                batch_dispatch=False,
            )
        )
        assert waved == plain


class TestQueueParityGrid:
    """The PR 10 axis: calendar scheduler vs the tuple heap.

    ``queue="calendar"`` swaps the kernel's event queue for the
    array-backed calendar (:class:`~repro.sim.engine.CalendarScheduler`)
    — per-epoch append-only buckets, lazily sorted, with a small
    overflow heap for pushes into the active epoch.  The contract is
    the strongest in the file: the calendar must be *byte-identical* to
    the heap on every observable surface, across protocols, churn,
    fault plans, and every (batch_delivery, batch_dispatch) kernel
    combination — same-instant ordering included (priority, then
    sequence, exactly the tuple order the heap pops).
    """

    @pytest.mark.parametrize("protocol", ["sync", "es", "abd"])
    @pytest.mark.parametrize("churn_rate", [0.0, 0.08])
    def test_protocols_under_churn(self, protocol, churn_rate):
        heap = _surface(
            _drive(True, protocol=protocol, churn_rate=churn_rate)
        )
        calendar = _surface(
            _drive(
                True,
                protocol=protocol,
                churn_rate=churn_rate,
                queue="calendar",
            )
        )
        assert heap == calendar

    @pytest.mark.parametrize("fault_key", sorted(FAULT_PLANS))
    @pytest.mark.parametrize("churn_rate", [0.0, 0.08])
    def test_fault_plans_under_churn(self, fault_key, churn_rate):
        heap = _surface(
            _drive(True, fault_key=fault_key, churn_rate=churn_rate)
        )
        calendar = _surface(
            _drive(
                True,
                fault_key=fault_key,
                churn_rate=churn_rate,
                queue="calendar",
            )
        )
        assert heap == calendar

    @pytest.mark.parametrize("batch", [True, False])
    @pytest.mark.parametrize("dispatch", [True, False])
    def test_kernel_combinations(self, batch, dispatch):
        """Every delivery/dispatch kernel rides both queues identically."""
        heap = _surface(
            _drive(batch, churn_rate=0.08, batch_dispatch=dispatch)
        )
        calendar = _surface(
            _drive(
                batch,
                churn_rate=0.08,
                batch_dispatch=dispatch,
                queue="calendar",
            )
        )
        assert heap == calendar

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_seed_sweep_with_churn_and_loss(self, seed):
        heap = _surface(
            _drive(True, seed=seed, churn_rate=0.1, fault_key="loss")
        )
        calendar = _surface(
            _drive(
                True,
                seed=seed,
                churn_rate=0.1,
                fault_key="loss",
                queue="calendar",
            )
        )
        assert heap == calendar

    def test_trace_records_identical(self):
        heap = _drive(True, churn_rate=0.08, fault_key="loss", trace=True)
        calendar = _drive(
            True,
            churn_rate=0.08,
            fault_key="loss",
            trace=True,
            queue="calendar",
        )
        assert _normalized_records(heap) == _normalized_records(calendar)
        assert operation_digest(heap.close()) == operation_digest(
            calendar.close()
        )


def _normalized_records(system: DynamicSystem) -> list[tuple]:
    """Trace records with broadcast ids relabelled by first appearance.

    Broadcast ids come from a process-global counter, so two systems in
    one test process see different absolute values; the *order* of
    allocation is part of the contract, the offset is not.
    """
    relabel: dict[int, int] = {}
    out = []
    for record in system.trace:
        details = dict(record.details)
        raw = details.get("broadcast_id")
        if raw is not None:
            details["broadcast_id"] = relabel.setdefault(raw, len(relabel))
        out.append((record.time, record.kind, record.process, sorted(details.items())))
    return out


class TestTraceParity:
    """With tracing on, the *entire record sequence* must match.

    Tracing also forces the network off its fast path, so this pins the
    checked arm of the batched kernel against the legacy kernel —
    record by record, in order, timestamps and details included.
    """

    @pytest.mark.parametrize("fault_key", ["none", "loss"])
    def test_trace_records_identical(self, fault_key):
        batched = _drive(
            True, churn_rate=0.08, fault_key=fault_key, trace=True
        )
        legacy = _drive(
            False, churn_rate=0.08, fault_key=fault_key, trace=True
        )
        assert _normalized_records(batched) == _normalized_records(legacy)
        assert operation_digest(batched.close()) == operation_digest(
            legacy.close()
        )

    @pytest.mark.parametrize("protocol", ["sync", "es"])
    def test_trace_records_identical_across_dispatch(self, protocol):
        waved = _drive(
            True, protocol=protocol, churn_rate=0.08, trace=True,
            batch_dispatch=True,
        )
        plain = _drive(
            True, protocol=protocol, churn_rate=0.08, trace=True,
            batch_dispatch=False,
        )
        assert _normalized_records(waved) == _normalized_records(plain)
        assert operation_digest(waved.close()) == operation_digest(
            plain.close()
        )


class TestKernelParityProperty:
    """Hypothesis sweeps the seed/churn space the grids cannot cover."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        churn_rate=st.floats(min_value=0.0, max_value=0.12),
        dispatch=st.booleans(),
        queue=st.sampled_from(["heap", "calendar"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_seed_any_churn(self, seed, churn_rate, dispatch, queue):
        batched = _surface(
            _drive(
                True,
                seed=seed,
                churn_rate=churn_rate,
                n=10,
                batch_dispatch=dispatch,
                queue=queue,
            )
        )
        legacy = _surface(
            _drive(
                False,
                seed=seed,
                churn_rate=churn_rate,
                n=10,
                batch_dispatch=not dispatch,
            )
        )
        assert batched == legacy
