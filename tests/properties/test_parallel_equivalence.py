"""The execution engine's headline guarantee, asserted end to end:

``--workers N`` output is **byte-identical** to ``--workers 1``.

Two consumers are exercised over pinned seeds: the adversarial
explorer (full ``ExplorationReport`` JSON, shrinking included) and an
experiment grid (full ``describe()`` rendering — rows, notes and
verdict).  Equality is asserted on the serialized artifacts, not on
summaries, so any ordering or seed-derivation regression in the
parallel path shows up as a diff, not a statistic.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import e04_lemma2, e09_latency, e14_sharded_cluster
from repro.workloads.explorer import explore

#: Enough workers to genuinely exercise the pool on any host.
WORKERS = 4

EXPLORE_KWARGS = dict(
    budget=8,
    protocols=("sync",),
    delays=("sync",),
    churn_rates=(0.0, 0.02),
    plan_names=("none", "light-loss", "heavy-loss", "writer-crash"),
    seeds_per_combo=1,
    n=8,
    delta=5.0,
    horizon=80.0,
    shrink=True,  # violating cells exercise shrink + re-judge too
)


@pytest.mark.parametrize("seed", [0, 11])
def test_explore_report_is_byte_identical_across_worker_counts(seed):
    serial = explore(seed=seed, workers=1, **EXPLORE_KWARGS)
    parallel = explore(seed=seed, workers=WORKERS, **EXPLORE_KWARGS)
    serial_blob = json.dumps(serial.to_dict(), sort_keys=True)
    parallel_blob = json.dumps(parallel.to_dict(), sort_keys=True)
    assert serial_blob == parallel_blob


@pytest.mark.parametrize("seed", [0, 7])
def test_experiment_grid_is_byte_identical_across_worker_counts(seed):
    serial = e04_lemma2.run(seed=seed, quick=True, workers=1)
    parallel = e04_lemma2.run(seed=seed, quick=True, workers=WORKERS)
    assert serial.describe() == parallel.describe()


def test_multi_row_cells_keep_row_order():
    # E9's cells each return several rows; interleaving would reorder
    # the table if the engine ever yielded by completion time.
    serial = e09_latency.run(seed=0, quick=True, workers=1)
    parallel = e09_latency.run(seed=0, quick=True, workers=WORKERS)
    assert serial.describe() == parallel.describe()


def test_e14_sharded_cluster_is_byte_identical_across_worker_counts():
    # The E14 acceptance criterion: cluster cells (multi-system runs on
    # one shared scheduler, shard-derived seeds) must be exactly as
    # worker-count-independent as single-system cells.
    serial = e14_sharded_cluster.run(seed=0, quick=True, workers=1)
    parallel = e14_sharded_cluster.run(seed=0, quick=True, workers=WORKERS)
    assert serial.describe() == parallel.describe()


def test_explore_sharded_cells_byte_identical_across_worker_counts():
    kwargs = dict(
        budget=6,
        protocols=("sync",),
        delays=("sync",),
        churn_rates=(0.02,),
        plan_names=("none", "heavy-loss"),
        seeds_per_combo=1,
        n=12,
        delta=5.0,
        horizon=80.0,
        shrink=True,
        key_counts=(4,),
        key_dist="zipf",
        shard_counts=(1, 3),
    )
    serial = explore(seed=3, workers=1, **kwargs)
    parallel = explore(seed=3, workers=WORKERS, **kwargs)
    assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
        parallel.to_dict(), sort_keys=True
    )
