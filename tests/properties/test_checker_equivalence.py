"""Fast checkers vs. the retained naive oracles.

The sub-quadratic regularity sweep and the O(R log R) inversion sweep
must agree with the brute-force reference implementations
(``paranoid=True``) on every verdict.  Two sources of histories:

* *synthetic* histories drawn by hypothesis — serialized writes with a
  tail of pending/abandoned writes, reads returning arbitrary written
  (or never-written) values, so both the accept and the reject paths
  are exercised with exact timestamps;
* *simulated* histories from fixed-seed churn runs, which add join
  adoptions, abandoned operations and realistic interleavings.

Regularity parity is exact (field-for-field identical judgements).
Inversion parity is on verdicts and on the set of inverted reads: the
fast sweep reports one witness pair per inverted read, while the naive
scan enumerates every pair, so the pair lists may legitimately differ
in size — but never in which reads are inverted, nor in
``is_atomic`` / ``is_regular_but_not_atomic``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import RegularityChecker, find_new_old_inversions
from repro.core.history import History
from tests.conftest import make_system
from tests.core.helpers import join, read, write


# ----------------------------------------------------------------------
# Synthetic histories (hypothesis)
# ----------------------------------------------------------------------


@st.composite
def churny_history(draw) -> History:
    """A serialized-write history with reads, joins and ragged writes."""
    history = History("v0")
    write_count = draw(st.integers(min_value=0, max_value=8))
    cursor = 0.0
    values = ["v0"]
    for i in range(1, write_count + 1):
        start = cursor + draw(st.floats(min_value=0.1, max_value=4.0))
        fate = draw(st.sampled_from(["done", "done", "done", "pending", "abandoned"]))
        value = f"w{i}"
        values.append(value)
        if fate == "done":
            end = start + draw(st.floats(min_value=0.1, max_value=4.0))
            write(history, value, start, end)
            cursor = end
        elif fate == "pending":
            write(history, value, start, None)
            cursor = start
        else:
            write(history, value, start, None, abandoned=True)
            cursor = start
    horizon = cursor + 10.0
    read_count = draw(st.integers(min_value=0, max_value=12))
    for _ in range(read_count):
        invoke = draw(st.floats(min_value=0.0, max_value=horizon))
        duration = draw(st.floats(min_value=0.0, max_value=5.0))
        returned = draw(st.sampled_from(values + ["junk"]))
        read(history, returned, invoke, invoke + duration)
    join_count = draw(st.integers(min_value=0, max_value=3))
    for j in range(join_count):
        invoke = draw(st.floats(min_value=0.0, max_value=horizon))
        duration = draw(st.floats(min_value=0.1, max_value=5.0))
        adopted = draw(st.sampled_from(values))
        join(history, adopted, sequence=j, start=invoke, end=invoke + duration)
    history.close(horizon + 10.0)
    return history


def assert_safety_parity(history: History, check_joins: bool = True) -> None:
    fast = RegularityChecker(history, check_joins=check_joins).check()
    naive = RegularityChecker(
        history, check_joins=check_joins, paranoid=True
    ).check()
    assert len(fast.judgements) == len(naive.judgements)
    for f, n in zip(fast.judgements, naive.judgements):
        assert f.operation is n.operation
        assert f.returned == n.returned
        assert f.allowed == n.allowed
        assert f.valid == n.valid
        assert f.last_completed_index == n.last_completed_index
        assert f.explanation == n.explanation
    assert fast.is_safe == naive.is_safe
    assert fast.violation_count == naive.violation_count


def assert_atomicity_parity(history: History) -> None:
    fast = find_new_old_inversions(history)
    naive = find_new_old_inversions(history, paranoid=True)
    assert fast.safety.is_safe == naive.safety.is_safe
    assert fast.safety.violation_count == naive.safety.violation_count
    assert fast.is_atomic == naive.is_atomic
    assert fast.is_regular_but_not_atomic == naive.is_regular_but_not_atomic
    fast_inverted = {inv.later.op_id for inv in fast.inversions}
    naive_inverted = {inv.later.op_id for inv in naive.inversions}
    assert fast_inverted == naive_inverted
    naive_pairs = {(inv.earlier.op_id, inv.later.op_id) for inv in naive.inversions}
    for inv in fast.inversions:
        assert (inv.earlier.op_id, inv.later.op_id) in naive_pairs
        assert inv.earlier.response_time < inv.later.invoke_time
        assert inv.earlier_write_index > inv.later_write_index


class TestSyntheticEquivalence:
    @given(history=churny_history())
    @settings(max_examples=300, deadline=None)
    def test_regularity_parity(self, history):
        assert_safety_parity(history)

    @given(history=churny_history())
    @settings(max_examples=300, deadline=None)
    def test_atomicity_parity(self, history):
        assert_atomicity_parity(history)


# ----------------------------------------------------------------------
# Simulated churn histories (fixed seeds)
# ----------------------------------------------------------------------


def run_churn_history(seed: int, protocol: str = "sync", n: int = 12) -> History:
    system = make_system(n=n, seed=seed, protocol=protocol, trace=False)
    system.attach_churn(rate=0.05)
    for _ in range(6):
        system.write()
        system.run_for(16.0)  # ES writes take up to 3δ; keep writes serialized
        for pid in system.active_pids()[:6]:
            system.read(pid)
        system.run_for(4.0)
    return system.close()


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
def test_simulated_history_regularity_parity(seed):
    history = run_churn_history(seed)
    assert history.joins(), "churn runs should exercise join adoptions"
    assert_safety_parity(history)


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_simulated_history_atomicity_parity(seed):
    assert_atomicity_parity(run_churn_history(seed))


@pytest.mark.parametrize("seed", [0, 3])
def test_simulated_es_history_parity(seed):
    history = run_churn_history(seed, protocol="es", n=11)
    assert_safety_parity(history)
    assert_atomicity_parity(history)
