"""Property-based tests for the regularity checker.

Strategy: generate a random serialized-write history, compute each
read's allowed set with an independent brute-force oracle, then hand
the checker (a) reads drawn from the allowed set — it must accept — and
(b) reads drawn from outside it — it must reject.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checker import RegularityChecker
from repro.core.history import History
from tests.core.helpers import read, write


@dataclass(frozen=True)
class WriteSpec:
    value: str
    start: float
    end: float


@st.composite
def serialized_writes(draw) -> list[WriteSpec]:
    """1–6 non-overlapping writes with strictly increasing intervals."""
    count = draw(st.integers(min_value=1, max_value=6))
    specs = []
    cursor = 0.0
    for i in range(1, count + 1):
        gap = draw(st.floats(min_value=0.5, max_value=5.0))
        duration = draw(st.floats(min_value=0.5, max_value=5.0))
        start = cursor + gap
        end = start + duration
        specs.append(WriteSpec(value=f"w{i}", start=start, end=end))
        cursor = end
    return specs


@st.composite
def read_interval(draw, horizon: float):
    start = draw(st.floats(min_value=0.0, max_value=horizon))
    duration = draw(st.floats(min_value=0.0, max_value=5.0))
    return start, start + duration


def oracle_allowed(specs: list[WriteSpec], invoke: float, response: float) -> set[str]:
    """Brute-force allowed set, straight from the Section 2.2 wording."""
    completed_before = [s for s in specs if s.end <= invoke]
    last = max(completed_before, key=lambda s: s.start, default=None)
    allowed = {last.value if last is not None else "v0"}
    for spec in specs:
        if spec.start <= response and spec.end > invoke:
            allowed.add(spec.value)
    return allowed


def build_history(specs: list[WriteSpec]) -> History:
    history = History("v0")
    for spec in specs:
        write(history, spec.value, spec.start, spec.end)
    return history


class TestCheckerAgreesWithOracle:
    @given(specs=serialized_writes(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_allowed_values_accepted(self, specs, data):
        horizon = specs[-1].end + 10.0
        invoke, response = data.draw(read_interval(horizon))
        allowed = oracle_allowed(specs, invoke, response)
        returned = data.draw(st.sampled_from(sorted(allowed)))
        history = build_history(specs)
        read(history, returned, invoke, response)
        report = RegularityChecker(history, check_joins=False).check()
        assert report.is_safe, (
            f"checker rejected {returned!r} for read [{invoke}, {response}] "
            f"but the oracle allows {allowed}"
        )

    @given(specs=serialized_writes(), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_disallowed_values_rejected(self, specs, data):
        horizon = specs[-1].end + 10.0
        invoke, response = data.draw(read_interval(horizon))
        allowed = oracle_allowed(specs, invoke, response)
        universe = {"v0"} | {s.value for s in specs}
        forbidden = sorted(universe - allowed)
        if not forbidden:
            return  # every written value is legal for this interval
        returned = data.draw(st.sampled_from(forbidden))
        history = build_history(specs)
        read(history, returned, invoke, response)
        report = RegularityChecker(history, check_joins=False).check()
        assert not report.is_safe, (
            f"checker accepted {returned!r} for read [{invoke}, {response}] "
            f"but the oracle only allows {allowed}"
        )

    @given(specs=serialized_writes())
    @settings(max_examples=100, deadline=None)
    def test_reading_final_value_after_everything_is_safe(self, specs):
        history = build_history(specs)
        last = specs[-1]
        read(history, last.value, last.end + 1.0, last.end + 1.0)
        assert RegularityChecker(history, check_joins=False).check().is_safe

    @given(specs=serialized_writes())
    @settings(max_examples=100, deadline=None)
    def test_reading_initial_value_after_first_write_is_unsafe(self, specs):
        history = build_history(specs)
        read(history, "v0", specs[0].end + 0.1, specs[0].end + 0.1)
        assert not RegularityChecker(history, check_joins=False).check().is_safe
