"""Property-based tests for churn accounting and population invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.churn.model import ConstantChurn
from tests.conftest import make_system


class TestQuotaAccounting:
    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        n=st.integers(min_value=1, max_value=100),
        ticks=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_long_run_average_is_exact(self, rate, n, ticks):
        churn = ConstantChurn(rate=rate, n=n)
        total = sum(churn.refreshes_for_next_tick() for _ in range(ticks))
        exact = rate * n * ticks
        assert abs(total - exact) < 1.0  # the carry never drifts

    @given(
        rate=st.floats(min_value=0.0, max_value=0.5),
        n=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_tick_quota_never_negative(self, rate, n):
        churn = ConstantChurn(rate=rate, n=n)
        for _ in range(50):
            assert churn.refreshes_for_next_tick() >= 0


class TestPopulationInvariants:
    @given(
        rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_population_constant_under_churn(self, rate, seed):
        system = make_system(n=12, seed=seed, trace=False)
        system.attach_churn(rate=rate)
        system.run_until(30.0)
        assert system.present_count() == 12

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identities_never_reused(self, seed):
        system = make_system(n=8, seed=seed, trace=False)
        system.attach_churn(rate=0.2)
        system.run_until(25.0)
        pids = [record.pid for record in system.membership.iter_records()]
        assert len(pids) == len(set(pids))

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_departed_never_return(self, seed):
        system = make_system(n=8, seed=seed, trace=False)
        system.attach_churn(rate=0.2)
        system.run_until(25.0)
        for record in system.membership.iter_records():
            if record.left_at is not None:
                assert not system.membership.is_present(record.pid)
                process = system.membership.process(record.pid)
                assert not process.present
