"""Edge-case tests for :class:`repro.cluster.history.ClusterHistory`.

The satellite checklist cases: empty shards, a shard with only joins,
all operations landing on one shard — plus the merge/partition round
trip and digest semantics those cases stress.
"""

import pytest

from repro.cluster import ClusterConfig, ClusterSystem, cluster_digest
from repro.cluster.checker import (
    check_cluster_liveness,
    check_cluster_safety,
    find_cluster_inversions,
)
from repro.cluster.history import ClusterHistory
from repro.core.history import History
from repro.sim.errors import HistoryError


class TestEmptyShards:
    def test_cluster_with_idle_shards_checks_clean(self):
        """Shards that own no key (keys < shards) serve nothing."""
        cluster = ClusterSystem(ClusterConfig(shards=6, keys=2, n=12, seed=3))
        for key in cluster.keys:
            cluster.write(key=key)
        cluster.run_for(30.0)
        history = cluster.close()
        populated = {cluster.shard_of(key) for key in cluster.keys}
        for shard in history.shard_ids():
            ops = history.shard_view(shard)
            if shard not in populated:
                assert len(ops) == 0
        assert check_cluster_safety(history).is_safe
        assert find_cluster_inversions(history).is_atomic
        assert check_cluster_liveness(history, grace=30.0).is_live

    def test_wholly_empty_cluster_history(self):
        """A run with no operations at all still merges and judges."""
        cluster = ClusterSystem(ClusterConfig(shards=3, keys=3, n=6, seed=0))
        cluster.run_for(10.0)
        history = cluster.close()
        assert len(history) == 0
        assert list(history) == []
        report = check_cluster_safety(history)
        assert report.is_safe and report.checked_count == 0

    def test_no_shards_rejected(self):
        with pytest.raises(HistoryError):
            ClusterHistory([])


class TestJoinOnlyShard:
    def test_shard_with_only_joins_judges_adoptions(self):
        """Churn on an unaddressed shard: its history is joins only."""
        cluster = ClusterSystem(ClusterConfig(shards=2, keys=1, n=10, seed=4))
        idle = 1 - cluster.shard_of(cluster.keys[0])
        cluster.shards[idle].spawn_joiner()
        cluster.run_for(30.0)
        history = cluster.close()
        view = history.shard_view(idle)
        assert len(view.joins()) == 1
        assert not view.reads() and not view.writes()
        # The join's adoption (of the initial value) is still judged.
        report = check_cluster_safety(history)
        assert report.is_safe
        assert any(j.is_join for j in report.judgements)


class TestSingleHotShard:
    def test_all_operations_on_one_shard(self):
        """Total skew: every key addressed belongs to one shard."""
        cluster = ClusterSystem(ClusterConfig(shards=4, keys=8, n=16, seed=7))
        hot = cluster.shard_of(cluster.keys[0])
        hot_keys = cluster.keys_of_shard(hot)
        for key in hot_keys:
            cluster.write(key=key)
        cluster.run_for(25.0)
        for key in hot_keys:
            cluster.read(key=key)
        cluster.run_for(25.0)
        history = cluster.close()
        for shard in history.shard_ids():
            view = history.shard_view(shard)
            expected = 2 * len(hot_keys) if shard == hot else 0
            assert len(view.reads()) + len(view.writes()) == expected
        assert check_cluster_safety(history).is_safe
        assert check_cluster_safety(history, paranoid=True).is_safe


class TestMergeSemantics:
    def _run(self, seed=9):
        cluster = ClusterSystem(ClusterConfig(shards=3, keys=6, n=9, seed=seed))
        for key in cluster.keys:
            cluster.write(key=key)
        cluster.run_for(20.0)
        for key in cluster.keys:
            cluster.read(key=key)
        cluster.run_for(20.0)
        return cluster, cluster.close()

    def test_merge_is_in_global_invocation_order(self):
        _, history = self._run()
        merged = history.merged_operations()
        assert [op.invoke_time for op in merged] == sorted(
            op.invoke_time for op in merged
        )
        assert len(merged) == len(history)

    def test_every_operation_is_shard_stamped(self):
        cluster, history = self._run()
        for op in history:
            assert op.shard is not None
            assert op.process_id.startswith(f"s{op.shard}.p")

    def test_shard_view_round_trip(self):
        """Partitioning the merge recovers each shard's own record."""
        cluster, history = self._run()
        for index, shard in enumerate(cluster.shards):
            view = history.shard_view(index)
            assert [op.op_id for op in view] == [
                op.op_id for op in shard.history
            ]
            assert view.horizon == shard.history.horizon

    def test_operations_kind_filter_and_keys(self):
        cluster, history = self._run()
        assert len(history.operations("write")) == 6
        assert len(history.operations("read")) == 6
        assert set(history.keys()) == set(cluster.keys)

    def test_cluster_digest_covers_the_shard_dimension(self):
        """Two single-shard histories with identical content but
        different shard stamps must digest differently."""
        a = History("v0", shard=0)
        b = History("v0", shard=1)
        mono_a = ClusterHistory([a])
        mono_b = ClusterHistory([b])
        from repro.sim.operations import OperationHandle

        for hist in (a, b):
            op = OperationHandle("read", "s0.p0001", 1.0)
            hist.record_operation(op)
            op._complete("v0", 2.0)
            hist.close(5.0)
        assert cluster_digest(mono_a) != cluster_digest(mono_b)

    def test_cluster_digest_stable_across_identical_runs(self):
        _, history_a = self._run(seed=12)
        _, history_b = self._run(seed=12)
        assert cluster_digest(history_a) == cluster_digest(history_b)


class TestMigrationSeam:
    """A committed handoff splits one key's record across two shards."""

    def _migrated(self, seed=11):
        cluster = ClusterSystem(
            ClusterConfig(shards=3, keys=6, n=18, seed=seed)
        )
        key = cluster.keys[0]
        source = cluster.shard_of(key)
        dest = (source + 1) % 3
        cluster.write("pre", key=key)
        cluster.run_for(15.0)
        cluster.schedule_migration(key, dest, at=20.0)
        cluster.run_until(60.0)
        cluster.write("post", key=key)
        cluster.run_for(15.0)
        cluster.read(key=key)
        cluster.run_for(5.0)
        return cluster, cluster.close(), key, source, dest

    def test_migrated_keys_and_shards_are_recorded(self):
        _, history, key, source, dest = self._migrated()
        assert history.migrated_keys == frozenset({key})
        assert history.migration_shards == frozenset({source, dest})
        assert len(history.migrations) == 1
        assert history.migrations[0].committed

    def test_unmigrated_run_records_no_seam(self):
        cluster, history = TestMergeSemantics()._run()
        assert history.migrated_keys == frozenset()
        assert history.migration_shards == frozenset()

    def test_shard_views_exclude_the_migrated_key(self):
        _, history, key, source, dest = self._migrated()
        for shard in history.shard_ids():
            assert all(
                getattr(op, "key", None) != key
                for op in history.shard_view(shard)
            )

    def test_seam_view_stitches_both_sides_in_order(self):
        _, history, key, source, dest = self._migrated()
        seam = history.seam_view(key)
        writes = [op.argument for op in seam.writes() if op.done]
        assert writes == ["pre", "post"]
        assert any(
            op.result == "post" for op in seam.reads() if op.done
        )
        times = [op.invoke_time for op in seam]
        assert times == sorted(times)
        # Both sides of the seam contributed operations.
        assert {op.shard for op in seam} == {source, dest}

    def test_seam_plus_shard_views_cover_every_keyed_operation(self):
        _, history, key, *_ = self._migrated()
        keyed = [op for op in history if getattr(op, "key", None) is not None]
        covered = sum(
            len([op for op in history.shard_view(s) if getattr(op, "key", None) is not None])
            for s in history.shard_ids()
        ) + len(history.seam_view(key))
        assert covered == len(keyed)

    def test_digest_covers_the_migration_record(self):
        """Same operations, different handoff outcome ⇒ different digest."""
        _, migrated, *_ = self._migrated(seed=11)
        _, again, *_ = self._migrated(seed=11)
        assert cluster_digest(migrated) == cluster_digest(again)
