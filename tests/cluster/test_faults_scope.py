"""Shard-scoped fault plans: a fault takes down exactly its shard."""

import pytest

from repro.cluster import ClusterConfig, ClusterSystem
from repro.faults.plan import FaultPlan, LossFault, PartitionFault
from repro.sim.errors import ConfigError


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=3, keys=6, n=12, seed=8)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


def drive(cluster: ClusterSystem, horizon: float = 80.0) -> None:
    for key in cluster.keys:
        cluster.write(key=key)
    cluster.run_for(horizon / 2)
    for key in cluster.keys:
        cluster.read(key=key)
    cluster.run_for(horizon / 2)


class TestShardScoping:
    def test_scoped_plan_fires_in_exactly_one_shard(self):
        """The satellite case: only the target shard's counters move."""
        plan = FaultPlan.of(LossFault(probability=1.0), name="total-loss")
        cluster = make_cluster()
        target = 1
        injectors = cluster.install_faults(plan, shards=[target])
        assert len(injectors) == 1
        assert cluster.shards[target].faults is injectors[0]
        drive(cluster)
        for index, shard in enumerate(cluster.shards):
            if index == target:
                assert shard.faults is not None
                assert shard.faults.counters().get("lost", 0) > 0
                assert shard.network.faulted_count > 0
            else:
                assert shard.faults is None
                assert shard.network.faulted_count == 0
        # The cluster aggregate equals the one faulted shard's count.
        assert cluster.faulted_count == (
            cluster.shards[target].network.faulted_count
        )
        assert cluster.fault_counters()["lost"] == (
            cluster.shards[target].faults.counters()["lost"]
        )

    def test_cluster_wide_install_reaches_every_shard(self):
        plan = FaultPlan.of(LossFault(probability=1.0), name="total-loss")
        cluster = make_cluster()
        injectors = cluster.install_faults(plan)
        assert len(injectors) == len(cluster.shards)
        drive(cluster)
        for shard in cluster.shards:
            assert shard.network.faulted_count > 0

    def test_partition_takes_down_exactly_one_shard(self):
        """A pid-group partition, scoped: the shard's quorum traffic is
        severed while every other shard keeps its deliveries."""
        target = 2
        cluster = make_cluster()
        # Written against *bare* seed names: scoping must rewrite them
        # into the target shard's namespace.
        plan = FaultPlan.of(
            PartitionFault(
                start=0.0,
                end=200.0,
                group_a=frozenset({"p0001", "p0002"}),
                mode="drop",
            ),
            name="cut",
        )
        cluster.install_faults(plan, shards=[target])
        drive(cluster)
        assert cluster.shards[target].network.faulted_count > 0
        for index, shard in enumerate(cluster.shards):
            if index != target:
                assert shard.network.faulted_count == 0

    def test_scoping_rewrites_bare_pids_only(self):
        plan = FaultPlan.of(
            PartitionFault(
                start=0.0,
                end=10.0,
                group_a=frozenset({"p0001", "s9.p0007"}),
            ),
            name="mixed",
        )
        cluster = make_cluster()
        cluster.install_faults(plan, shards=[0])
        scoped = cluster.shards[0].faults.plan.partitions[0]
        assert scoped.group_a == frozenset({"s0.p0001", "s9.p0007"})

    def test_scope_pids_false_installs_verbatim(self):
        plan = FaultPlan.of(
            PartitionFault(start=0.0, end=10.0, group_a=frozenset({"p0001"})),
            name="verbatim",
        )
        cluster = make_cluster()
        cluster.install_faults(plan, shards=[0], scope_pids=False)
        assert cluster.shards[0].faults.plan.partitions[0].group_a == frozenset(
            {"p0001"}
        )

    def test_bad_shard_index_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.install_faults(FaultPlan(name="x"), shards=[5])


class TestMapPids:
    def test_map_pids_touches_every_reference(self):
        from repro.faults.plan import CrashFault, DelaySpikeFault

        plan = FaultPlan.of(
            LossFault(probability=0.5, sender="p0001", dest="p0002"),
            PartitionFault(
                start=0.0,
                end=5.0,
                group_a=frozenset({"p0003"}),
                group_b=frozenset({"p0004"}),
            ),
            DelaySpikeFault(factor=2.0, sender="p0005"),
            CrashFault(phase="WriteMsg", victim="sender", pid="p0006"),
            name="all-kinds",
        )
        mapped = plan.map_pids(lambda pid: f"s7.{pid}")
        assert mapped.losses[0].sender == "s7.p0001"
        assert mapped.losses[0].dest == "s7.p0002"
        assert mapped.partitions[0].group_a == frozenset({"s7.p0003"})
        assert mapped.partitions[0].group_b == frozenset({"s7.p0004"})
        assert mapped.spikes[0].sender == "s7.p0005"
        assert mapped.spikes[0].dest is None
        assert mapped.crashes[0].pid == "s7.p0006"
        # The symbolic victim role is not a pid and must survive.
        assert mapped.crashes[0].victim == "sender"
        assert mapped.name == "all-kinds"

    def test_map_pids_identity_is_equal(self):
        plan = FaultPlan.of(
            LossFault(probability=0.5, sender="p0001"), name="idy"
        )
        assert plan.map_pids(lambda pid: pid) == plan
