"""Unit tests for live key migration: freeze, copy, install, flip, drain."""

import pytest

from repro.cluster import ClusterConfig, ClusterSystem
from repro.faults.plan import CrashFault, FaultPlan, LossFault
from repro.protocols.common import MIGRATION_PAYLOADS
from repro.sim.errors import ConfigError


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=3, keys=6, n=18, delta=5.0, seed=7)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


class TestScheduling:
    def test_single_register_cluster_cannot_migrate(self):
        cluster = ClusterSystem(ClusterConfig(shards=2, keys=1, n=8, seed=1))
        with pytest.raises(ConfigError):
            cluster.schedule_migration(cluster.keys[0], 1, at=10.0)

    def test_dest_shard_must_exist(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.schedule_migration(cluster.keys[0], 3, at=10.0)
        with pytest.raises(ConfigError):
            cluster.schedule_migration(cluster.keys[0], -1, at=10.0)

    def test_migration_ids_are_deterministic_counters(self):
        cluster = make_cluster()
        cluster.schedule_migration(cluster.keys[0], 0, at=10.0)
        cluster.schedule_migration(cluster.keys[1], 0, at=20.0)
        assert [m.migration_id for m in cluster.migrations] == [1, 2]

    def test_migrating_to_the_current_owner_aborts_as_noop(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        record = cluster.schedule_migration(key, cluster.shard_of(key), at=10.0)
        cluster.run_until(30.0)
        assert record.aborted and record.reason == "noop"
        assert not cluster.is_frozen(key)


class TestCommit:
    def test_clean_handoff_commits_and_flips_routing(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        source = cluster.shard_of(key)
        dest = (source + 1) % 3
        record = cluster.schedule_migration(key, dest, at=20.0)
        cluster.write("before", key=key)
        cluster.run_until(60.0)
        assert record.committed and not record.aborted
        assert record.phase == "committed"
        assert record.source == source and record.dest == dest
        assert cluster.shard_of(key) == dest
        assert cluster.map_version == 1
        assert record.map_version == 1
        assert record.latency is not None and record.latency > 0
        # The flip is logged for the seam checkers and the digest.
        assert [entry[1:] for entry in cluster.ownership_log] == [
            (key, source, dest, 1)
        ]

    def test_installed_value_is_readable_at_the_destination(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        dest = (cluster.shard_of(key) + 1) % 3
        cluster.write("payload", key=key)
        cluster.run_for(15.0)
        cluster.schedule_migration(key, dest, at=20.0)
        cluster.run_until(60.0)
        read = cluster.read(key=key)
        cluster.run_for(1.0)
        assert read.done and read.result == "payload"
        assert read.shard == dest

    def test_writes_during_freeze_defer_and_drain_to_new_owner(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        dest = (cluster.shard_of(key) + 1) % 3
        record = cluster.schedule_migration(key, dest, at=20.0)
        cluster.run_until(21.0)
        assert cluster.is_frozen(key)
        deferred = cluster.write("during-freeze", key=key)
        assert deferred is None  # queued, not issued
        cluster.run_until(80.0)
        assert record.committed
        assert record.deferred_writes == 1
        read = cluster.read(key=key)
        cluster.run_for(1.0)
        assert read.result == "during-freeze"
        assert read.shard == dest

    def test_second_migration_of_same_key_waits_for_the_first(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        source = cluster.shard_of(key)
        first = cluster.schedule_migration(key, (source + 1) % 3, at=20.0)
        second = cluster.schedule_migration(key, (source + 2) % 3, at=21.0)
        cluster.run_until(120.0)
        assert first.committed and second.committed
        assert cluster.shard_of(key) == (source + 2) % 3
        assert cluster.map_version == 2

    def test_retry_after_a_lost_fetch_round_still_commits(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        dest = (cluster.shard_of(key) + 1) % 3
        # Eat every fetch reply during the first round only; the retry
        # re-polls and must converge (idempotent re-copy).
        cluster.install_faults(
            FaultPlan.of(
                LossFault(
                    probability=1.0,
                    payload_types=frozenset({"MigFetchReply"}),
                    start=0.0,
                    end=30.0,
                ),
                name="first-round-loss",
            ),
            scope_pids=False,
        )
        record = cluster.schedule_migration(key, dest, at=20.0)
        cluster.run_until(120.0)
        assert record.committed
        assert record.retries >= 1
        assert cluster.shard_of(key) == dest


class TestAbort:
    def test_total_coordination_loss_aborts_with_ownership_restored(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        source = cluster.shard_of(key)
        cluster.install_faults(
            FaultPlan.of(
                LossFault(probability=1.0, payload_types=MIGRATION_PAYLOADS),
                name="mig-loss",
            ),
            scope_pids=False,
        )
        record = cluster.schedule_migration(key, (source + 1) % 3, at=20.0)
        cluster.run_until(150.0)
        assert record.aborted and record.reason == "copy-timeout"
        assert cluster.shard_of(key) == source
        assert cluster.map_version == 0
        assert not cluster.is_frozen(key)

    def test_deferred_writes_drain_to_source_after_abort(self):
        cluster = make_cluster()
        key = cluster.keys[0]
        source = cluster.shard_of(key)
        cluster.install_faults(
            FaultPlan.of(
                LossFault(probability=1.0, payload_types=MIGRATION_PAYLOADS),
                name="mig-loss",
            ),
            scope_pids=False,
        )
        record = cluster.schedule_migration(key, (source + 1) % 3, at=20.0)
        cluster.run_until(25.0)
        assert cluster.write("queued", key=key) is None
        cluster.run_until(150.0)
        assert record.aborted
        read = cluster.read(key=key)
        cluster.run_for(1.0)
        assert read.result == "queued"
        assert read.shard == source

    def test_source_agent_crash_mid_copy_aborts_cleanly(self):
        cluster = make_cluster(seed=2)
        key = cluster.keys[1]
        source = cluster.shard_of(key)
        cluster.install_faults(
            FaultPlan.of(
                CrashFault(phase="MigFetchReply", victim="dest"),
                name="mig-crash-copy",
            ),
            scope_pids=False,
        )
        record = cluster.schedule_migration(key, (source + 1) % 3, at=20.0)
        cluster.run_until(150.0)
        assert record.aborted
        assert cluster.shard_of(key) == source
        assert not cluster.is_frozen(key)

    def test_dest_replica_crash_mid_install_still_commits(self):
        # A destination node departing at its MigInstall delivery stops
        # counting toward coverage (departed pids need no ack), so the
        # handoff commits without it.
        cluster = make_cluster(seed=3)
        key = cluster.keys[0]
        dest = (cluster.shard_of(key) + 1) % 3
        cluster.install_faults(
            FaultPlan.of(
                CrashFault(phase="MigInstall", victim="dest", occurrence=2),
                name="mig-crash-install",
            ),
            scope_pids=False,
        )
        record = cluster.schedule_migration(key, dest, at=20.0)
        cluster.run_until(150.0)
        assert record.committed
        assert cluster.shard_of(key) == dest


class TestElasticFrontDoor:
    def test_clusters_without_migrations_stay_non_elastic(self):
        cluster = make_cluster()
        handle = cluster.write("direct", key=cluster.keys[0])
        assert handle is not None  # non-elastic writes return handles
        assert cluster.writes_deferred == 0

    def test_elastic_values_are_cluster_unique(self):
        cluster = make_cluster()
        cluster.schedule_migration(cluster.keys[0], 0, at=200.0)
        values = [cluster.next_value() for _ in range(3)]
        assert values == ["w1", "w2", "w3"]

    def test_history_records_migrations_and_digest_covers_them(self):
        from repro.cluster import cluster_digest

        a = make_cluster()
        key = a.keys[0]
        dest = (a.shard_of(key) + 1) % 3
        a.schedule_migration(key, dest, at=20.0)
        a.run_until(80.0)
        history = a.close()
        assert len(history.migrations) == 1
        assert history.migrated_keys == frozenset({key})
        assert history.migration_shards == {a.shard_of(key), dest} | {
            r.source for r in history.migrations
        }
        # Same run, same digest; a non-migrating run digests differently.
        b = make_cluster()
        b.schedule_migration(key, dest, at=20.0)
        b.run_until(80.0)
        assert cluster_digest(b.close()) == cluster_digest(history)


class TestDeferredQueueDepth:
    def test_deep_queue_against_a_crashed_writer_drains_iteratively(self):
        """Regression: draining a deferred-write queue used to recurse
        once per dropped value, so a few thousand writes queued behind a
        frozen key whose owner lost its writer blew the recursion limit
        mid-run.  The drain is a loop now: every value drops in the same
        frame and the queue empties no matter how deep it got."""
        depth = 3000
        cluster = make_cluster()
        cluster.enable_elastic()
        key = cluster.keys[0]
        shard = cluster.shard_for(key)
        cluster._freeze(key)
        for _ in range(depth):
            assert cluster.write(key=key) is None  # queued behind the freeze
        assert cluster.writes_deferred == depth
        shard.leave(shard.writer_pid)
        cluster._frozen_keys.discard(key)
        cluster._drain_queue(key)  # recursed pre-fix: RecursionError here
        assert cluster.writes_dropped == depth
        assert not cluster._write_queues.get(key)

    def test_drain_resumes_issuing_once_a_live_value_heads_the_queue(self):
        """The iterative drain must still stop at the first value it can
        actually issue — dropping is the exceptional path, not the loop's
        purpose."""
        cluster = make_cluster()
        cluster.enable_elastic()
        key = cluster.keys[0]
        cluster._freeze(key)
        for _ in range(5):
            cluster.write(key=key)
        cluster._frozen_keys.discard(key)
        cluster._drain_queue(key)  # writer alive: issues exactly one
        assert cluster.writes_dropped == 0
        assert len(cluster._write_queues[key]) == 4
        cluster.run_until(40.0)  # the rest chain out as each settles
        assert not cluster._write_queues.get(key)
        assert cluster.writes_dropped == 0
