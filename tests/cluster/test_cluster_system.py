"""Unit tests for :class:`repro.cluster.system.ClusterSystem`."""

import pytest

from repro.cluster import ClusterConfig, ClusterSystem, cluster_digest
from repro.core.history import operation_digest
from repro.runtime.system import DynamicSystem
from repro.sim.errors import ConfigError


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=3, keys=6, n=12, seed=5)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


class TestConstruction:
    def test_shards_share_one_engine(self):
        cluster = make_cluster()
        assert all(shard.engine is cluster.engine for shard in cluster.shards)
        assert all(not shard.owns_engine for shard in cluster.shards)

    def test_shard_ids_and_pid_namespaces(self):
        cluster = make_cluster()
        for index, shard in enumerate(cluster.shards):
            assert shard.shard_id == index
            assert all(pid.startswith(f"s{index}.p") for pid in shard.seed_pids)

    def test_populations_are_disjoint(self):
        cluster = make_cluster()
        all_pids = [pid for shard in cluster.shards for pid in shard.seed_pids]
        assert len(all_pids) == len(set(all_pids)) == 12


class TestRouting:
    def test_every_key_routes_to_its_owner(self):
        cluster = make_cluster()
        for key in cluster.keys:
            shard = cluster.shard_for(key)
            assert key in shard.keys
            assert cluster.shard_of(key) == cluster.config.shard_of(key)

    def test_none_key_resolves_to_default(self):
        cluster = make_cluster()
        assert cluster.resolve_key(None) == cluster.keys[0]

    def test_unknown_key_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.read(key="k999")

    def test_write_and_read_land_on_owning_shard(self):
        cluster = make_cluster()
        key = cluster.keys[3]
        owner = cluster.shard_of(key)
        handle = cluster.write("hello", key=key)
        cluster.run_for(20.0)
        assert handle.done
        assert handle.shard == owner
        read = cluster.read(key=key)
        cluster.run_for(20.0)
        assert read.result == "hello"
        assert read.shard == owner
        # The operations are recorded only in the owner's history.
        for index, shard in enumerate(cluster.shards):
            expected = 2 if index == owner else 0
            assert len(shard.history.reads()) + len(shard.history.writes()) == expected


class TestDeterminism:
    def _drive(self, seed: int) -> str:
        cluster = make_cluster(seed=seed)
        cluster.attach_churn(rate=0.05, min_stay=10.0)
        for key in cluster.keys:
            cluster.write(key=key)
        cluster.run_for(40.0)
        for key in cluster.keys:
            cluster.read(key=key)
        cluster.run_for(40.0)
        return cluster_digest(cluster.close())

    def test_same_seed_same_cluster_digest(self):
        assert self._drive(5) == self._drive(5)

    def test_different_seed_different_digest(self):
        assert self._drive(5) != self._drive(6)

    def test_shards_one_matches_standalone_shard_system(self):
        """A 1-shard cluster is exactly its shard run standalone.

        The wrapper adds routing and a shared engine; neither may
        perturb the shard's behaviour — the operation digest of the
        cluster's only shard equals a standalone DynamicSystem built
        from the identical derived config.
        """
        config = ClusterConfig(shards=1, keys=4, n=10, seed=11)

        def drive(read, write, run_for, close):
            for key in ("k0", "k1", "k2", "k3"):
                write(key)
            run_for(30.0)
            for key in ("k0", "k1", "k2", "k3"):
                read(key)
            run_for(30.0)
            return close()

        cluster = ClusterSystem(config)
        cluster_history = drive(
            lambda key: cluster.read(key=key),
            lambda key: cluster.write(key=key),
            cluster.run_for,
            lambda: cluster.close().shard_history(0),
        )
        solo = DynamicSystem(config.shard_config(0))
        solo_history = drive(
            lambda key: solo.read(solo.writer_pid, key=key),
            lambda key: solo.write(key=key),
            solo.run_for,
            solo.close,
        )
        assert operation_digest(cluster_history) == operation_digest(solo_history)


class TestChurnAndAccounting:
    def test_attach_churn_installs_one_controller_per_shard(self):
        cluster = make_cluster()
        controllers = cluster.attach_churn(rate=0.1, min_stay=5.0)
        assert len(controllers) == 3
        for shard, controller in zip(cluster.shards, controllers):
            assert shard.churn is controller

    def test_aggregate_counters_sum_shards(self):
        cluster = make_cluster()
        cluster.attach_churn(rate=0.1, min_stay=5.0)
        cluster.write(key=cluster.keys[0])
        cluster.run_for(40.0)
        assert cluster.delivered_count == sum(
            s.network.delivered_count for s in cluster.shards
        )
        assert cluster.sent_count == sum(
            s.network.sent_count for s in cluster.shards
        )
        assert cluster.per_node_delivered() == pytest.approx(
            cluster.delivered_count / cluster.config.n
        )

    def test_active_counts_probe(self):
        cluster = make_cluster()
        assert cluster.active_counts() == cluster.config.shard_sizes()


class TestClose:
    def test_close_is_idempotent_and_merges_all_shards(self):
        cluster = make_cluster()
        for key in cluster.keys:
            cluster.write(key=key)
        cluster.run_for(20.0)
        history = cluster.close()
        assert cluster.close() is history
        assert len(history) == sum(len(s.history) for s in cluster.shards)
        assert history.horizon == cluster.now

    def test_history_property_closes(self):
        cluster = make_cluster()
        assert cluster.history.horizon is not None
