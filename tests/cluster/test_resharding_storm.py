"""Resharding-storm matrix: crash-safe handoff under adversarial plans.

The acceptance bar for live migration: across the pinned storm matrix,
every scheduled handoff resolves (committed flip or clean abort — never
a record stuck mid-phase, never two owners, never none), and no
in-model plan produces a safety violation.  Coordination faults
(migration-payload loss, agent crashes) are *in-model* — the protocol
claims to survive them — so any ``bug`` verdict here is a real
protocol defect, not an excusable storm casualty.
"""

import pytest

from repro.workloads.explorer import (
    VERDICT_BUG,
    ScenarioSpec,
    build_plan,
    run_scenario,
)

STORM_PLANS = (
    "none",
    "mig-crash-copy",
    "mig-crash-install",
    "mig-loss",
    "mig-storm",
)
STORM_SEEDS = (0, 1, 2, 3)


def storm_spec(plan_name: str, seed: int, **overrides) -> ScenarioSpec:
    params = dict(
        n=18,
        delta=5.0,
        churn_rate=0.02,
        seed=seed,
        horizon=120.0,
        keys=6,
        shards=3,
        migrations=3,
    )
    params.update(overrides)
    plan = build_plan(
        plan_name, params["delta"], params["horizon"], params["n"]
    )
    return ScenarioSpec(plan=plan, **params)


class TestStormMatrix:
    @pytest.mark.parametrize("plan_name", STORM_PLANS)
    @pytest.mark.parametrize("seed", STORM_SEEDS)
    def test_no_in_model_bugs_and_every_handoff_resolves(
        self, plan_name, seed
    ):
        outcome = run_scenario(storm_spec(plan_name, seed))
        assert outcome.verdict != VERDICT_BUG, outcome.first_violation
        resolved = outcome.migrations_committed + outcome.migrations_aborted
        assert resolved == 3, (
            f"{plan_name} seed={seed}: {3 - resolved} handoff(s) stuck "
            f"mid-phase at the horizon"
        )

    def test_total_coordination_loss_aborts_every_handoff(self):
        outcome = run_scenario(storm_spec("mig-loss", seed=0))
        assert outcome.migrations_aborted == 3
        assert outcome.migrations_committed == 0
        assert outcome.safe

    def test_quiet_plan_commits_every_handoff(self):
        outcome = run_scenario(storm_spec("none", seed=0))
        assert outcome.migrations_committed == 3
        assert outcome.migrations_aborted == 0
        assert outcome.safe and outcome.live


class TestStormDeterminism:
    def test_same_spec_replays_byte_identically(self):
        a = run_scenario(storm_spec("mig-storm", seed=1))
        b = run_scenario(storm_spec("mig-storm", seed=1))
        assert a.digest == b.digest
        assert a.to_dict() == b.to_dict()

    def test_migration_axis_perturbs_the_digest(self):
        with_mig = run_scenario(storm_spec("none", seed=0))
        without = run_scenario(storm_spec("none", seed=0, migrations=0))
        assert with_mig.digest != without.digest
