"""Unit tests for :class:`repro.cluster.config.ClusterConfig`."""

import pytest

from repro.cluster.config import ClusterConfig
from repro.runtime.assembly import (
    derive_shard_seed,
    scope_pid,
    shard_pid_prefix,
    split_population,
)
from repro.sim.errors import ConfigError
from repro.sim.rng import derive_seed


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigError):
            ClusterConfig(shards=0)

    def test_rejects_zero_keys(self):
        with pytest.raises(ConfigError):
            ClusterConfig(keys=0)

    def test_rejects_population_smaller_than_shards(self):
        with pytest.raises(ConfigError):
            ClusterConfig(shards=8, n=4)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigError):
            ClusterConfig(protocol="paxos")

    def test_rejects_unknown_delay_name(self):
        with pytest.raises(ConfigError):
            ClusterConfig(delay="subspace")


class TestPopulationSplit:
    def test_even_split(self):
        assert split_population(40, 4) == (10, 10, 10, 10)

    def test_remainder_goes_to_earliest_shards(self):
        assert split_population(10, 3) == (4, 3, 3)

    def test_every_shard_at_least_one(self):
        assert split_population(3, 3) == (1, 1, 1)

    def test_rejects_impossible_split(self):
        with pytest.raises(ConfigError):
            split_population(2, 3)

    def test_shard_sizes_sum_to_total(self):
        config = ClusterConfig(shards=7, n=45)
        assert sum(config.shard_sizes()) == 45


class TestScopePid:
    def test_bare_pid_gains_the_shard_namespace(self):
        assert scope_pid("p0001", 2) == "s2.p0001"

    def test_namespaced_pid_passes_through(self):
        assert scope_pid("s9.p0007", 2) == "s9.p0007"

    def test_agrees_with_the_process_namespace(self):
        # scope_pid("p0001", i) must name what shard i actually calls
        # its first seed process.
        assert scope_pid("p0001", 4) == f"{shard_pid_prefix(4)}0001"


class TestKeyRouting:
    def test_partition_covers_every_key_exactly_once(self):
        config = ClusterConfig(shards=4, keys=16, n=8)
        owned = config.keys_by_shard()
        flat = [key for keys in owned for key in keys]
        assert sorted(flat) == sorted(config.key_tuple())

    def test_routing_is_deterministic_and_seeded(self):
        a = ClusterConfig(shards=4, keys=16, n=8, seed=1)
        b = ClusterConfig(shards=4, keys=16, n=8, seed=1)
        c = ClusterConfig(shards=4, keys=16, n=8, seed=2)
        assert a.keys_by_shard() == b.keys_by_shard()
        # A different seed must (for this many keys) shuffle at least
        # one key to a different shard.
        assert a.keys_by_shard() != c.keys_by_shard()

    def test_routing_is_the_documented_hash(self):
        config = ClusterConfig(shards=4, keys=16, n=8, seed=9)
        for key in config.key_tuple():
            assert config.shard_of(key) == (
                derive_seed(9, f"cluster.keymap:{key}") % 4
            )

    def test_single_key_cluster_keeps_the_none_sentinel(self):
        config = ClusterConfig(shards=2, keys=1, n=4)
        assert config.key_tuple() == (None,)

    def test_fewer_keys_than_shards_leaves_empty_shards(self):
        config = ClusterConfig(shards=8, keys=2, n=16, seed=0)
        owned = config.keys_by_shard()
        assert sum(1 for keys in owned if keys) <= 2
        assert sum(len(keys) for keys in owned) == 2


class TestShardConfigDerivation:
    def test_shard_config_namespace_and_seed(self):
        config = ClusterConfig(shards=3, keys=6, n=10, seed=42, delta=4.0)
        for index in range(3):
            sub = config.shard_config(index)
            assert sub.pid_prefix == shard_pid_prefix(index) == f"s{index}.p"
            assert sub.seed == derive_shard_seed(42, index)
            assert sub.delta == 4.0
            assert sub.n == config.shard_sizes()[index]

    def test_shard_config_owned_keys(self):
        config = ClusterConfig(shards=3, keys=6, n=10, seed=42)
        owned = config.keys_by_shard()
        for index in range(3):
            sub = config.shard_config(index)
            if owned[index]:
                assert sub.key_set == owned[index]
                assert sub.keys == len(owned[index])
            else:
                # An empty shard still serves a (private) single register.
                assert sub.key_set is None
                assert sub.keys == 1

    def test_shard_config_index_bounds(self):
        config = ClusterConfig(shards=2, n=4)
        with pytest.raises(ConfigError):
            config.shard_config(2)
        with pytest.raises(ConfigError):
            config.shard_config(-1)

    def test_shard_seeds_are_pairwise_distinct(self):
        config = ClusterConfig(shards=8, n=16, seed=0)
        seeds = {config.shard_config(i).seed for i in range(8)}
        assert len(seeds) == 8

    def test_delay_name_instantiated_per_shard(self):
        config = ClusterConfig(shards=2, n=4, delay="es")
        a = config.shard_config(0).delay
        b = config.shard_config(1).delay
        assert a is not None and b is not None
        assert a is not b
