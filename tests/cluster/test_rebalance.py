"""Unit tests for the load-watching rebalancer: policy, planning, drains.

The Rebalancer is the *when* on top of PR 6's *how*: it samples
per-shard load on the cluster clock and plans budget-bounded storms of
concurrent key migrations.  These tests pin its policy validation, its
trigger/idle/cooldown/quiesce tick notes, greedy move selection,
shard retirement, and — because the planner draws no randomness — the
byte-determinism of a rebalanced run, concurrent storms included.
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSystem,
    RebalancePolicy,
    Rebalancer,
)
from repro.sim.errors import ConfigError
from repro.workloads.cluster import ClusterWorkloadDriver, shard_skewed_key_picker
from repro.workloads.generators import assign_keys, read_heavy_plan


def make_cluster(**overrides) -> ClusterSystem:
    params = dict(shards=4, keys=8, n=16, delta=5.0, seed=9)
    params.update(overrides)
    return ClusterSystem(ClusterConfig(**params))


def skewed_setup(cluster, horizon, **policy_knobs):
    """Dynamic driver + rebalancer + Zipf hot-shard plan, ready to run."""
    driver = ClusterWorkloadDriver(cluster, dynamic=True)
    knobs = dict(period=15.0, threshold=1.2, budget=2, max_retries=1,
                 plan_until=horizon - 90.0)
    knobs.update(policy_knobs)
    rebalancer = Rebalancer(
        cluster, driver=driver, policy=RebalancePolicy(**knobs)
    )
    plan = read_heavy_plan(
        start=5.0, end=horizon - 20.0, write_period=10.0, read_rate=1.0,
        rng=cluster.rng.stream("t.rebal.plan"),
    )
    plan = assign_keys(
        plan,
        shard_skewed_key_picker(
            cluster, cluster.rng.stream("t.rebal.keys"), distribution="zipf"
        ),
    )
    driver.install(plan)
    return driver, rebalancer


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "knobs",
        [
            dict(period=0.0),
            dict(period=-5.0),
            dict(threshold=0.9),
            dict(budget=0),
            dict(cooldown=-1.0),
            dict(load="wall-clock"),
            dict(min_window_load=-1),
        ],
    )
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ConfigError):
            RebalancePolicy(**knobs).validate()

    def test_defaults_validate(self):
        RebalancePolicy().validate()

    def test_ops_signal_needs_a_driver(self):
        with pytest.raises(ConfigError):
            Rebalancer(make_cluster())

    def test_static_driver_rejected(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster, dynamic=False)
        with pytest.raises(ConfigError):
            Rebalancer(cluster, driver=driver)

    def test_delivered_signal_needs_no_driver(self):
        cluster = make_cluster()
        rebalancer = Rebalancer(
            cluster, policy=RebalancePolicy(load="delivered")
        )
        assert rebalancer.driver is None

    def test_construction_arms_the_elastic_front_door(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster, dynamic=True)
        Rebalancer(cluster, driver=driver)
        # Elastic writes draw the cluster-wide counter (starts at w1).
        assert cluster.next_value() == "w1"


class TestTickNotes:
    def test_idle_cluster_never_plans(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster, dynamic=True)
        rebalancer = Rebalancer(
            cluster, driver=driver, policy=RebalancePolicy(period=10.0)
        )
        driver.install([])
        cluster.run_until(50.0)
        assert len(rebalancer.samples) == 5
        assert all(s.note == "idle" for s in rebalancer.samples)
        assert rebalancer.actions == []

    def test_quiesce_stops_planning_but_not_sampling(self):
        cluster = make_cluster()
        driver, rebalancer = skewed_setup(cluster, horizon=200.0,
                                          plan_until=40.0)
        cluster.run_until(200.0)
        late = [s for s in rebalancer.samples if s.time > 40.0]
        assert late and all(s.note == "quiesced" for s in late)
        assert all(s.planned == 0 for s in late)
        assert all(a.time <= 40.0 for a in rebalancer.actions)

    def test_cooldown_suppresses_the_next_trigger(self):
        cluster = make_cluster()
        driver, rebalancer = skewed_setup(
            cluster, horizon=200.0, cooldown=100.0, plan_until=None
        )
        cluster.run_until(120.0)
        planning = [s for s in rebalancer.samples if s.planned]
        assert planning, "the skewed workload never triggered the planner"
        first = planning[0].time
        cooled = [
            s for s in rebalancer.samples
            if first < s.time < first + 100.0 and s.note == "cooldown"
        ]
        assert cooled, "no tick inside the cooldown window was suppressed"
        assert all(s.planned == 0 for s in cooled)


class TestBalancing:
    def test_skewed_load_triggers_moves_that_reduce_imbalance(self):
        horizon = 260.0
        static = make_cluster()
        static_driver = ClusterWorkloadDriver(static, dynamic=True)
        static.enable_elastic()
        plan = read_heavy_plan(
            start=5.0, end=horizon - 20.0, write_period=10.0, read_rate=1.0,
            rng=static.rng.stream("t.rebal.plan"),
        )
        plan = assign_keys(
            plan,
            shard_skewed_key_picker(
                static, static.rng.stream("t.rebal.keys"), distribution="zipf"
            ),
        )
        static_driver.install(plan)
        static.run_until(horizon)

        cluster = make_cluster()
        driver, rebalancer = skewed_setup(cluster, horizon)
        cluster.run_until(horizon)

        before = Rebalancer.imbalance_of(static_driver.shard_op_counts())
        after = Rebalancer.imbalance_of(driver.shard_op_counts())
        assert rebalancer.actions, "no moves planned under Zipf skew"
        assert after < before
        assert cluster.check_safety().is_safe

    def test_every_planned_storm_resolves_before_the_horizon(self):
        cluster = make_cluster()
        _, rebalancer = skewed_setup(cluster, horizon=260.0)
        cluster.run_until(260.0)
        summary = rebalancer.summary()
        assert summary["planned"] > 0
        assert summary["unresolved"] == 0
        assert summary["planned"] == (
            summary["committed"] + summary["aborted"]
        )

    def test_batch_never_exceeds_budget_and_moves_are_distinct_keys(self):
        cluster = make_cluster()
        _, rebalancer = skewed_setup(cluster, horizon=260.0, budget=2)
        cluster.run_until(260.0)
        by_tick = {}
        for action in rebalancer.actions:
            by_tick.setdefault(action.time, []).append(action.key)
        for instant, keys in by_tick.items():
            assert len(keys) <= 2, f"budget blown at t={instant}"
            assert len(set(keys)) == len(keys), "same key moved twice in a batch"

    def test_imbalance_of_is_max_over_mean(self):
        assert Rebalancer.imbalance_of((4, 2, 2)) == pytest.approx(1.5)
        assert Rebalancer.imbalance_of((3, 3, 3)) == pytest.approx(1.0)
        assert Rebalancer.imbalance_of(()) == 1.0
        assert Rebalancer.imbalance_of((0, 0)) == 1.0


class TestRetirement:
    def test_retired_shard_drains_fully_and_gets_nothing_back(self):
        cluster = make_cluster()
        driver, rebalancer = skewed_setup(
            cluster, horizon=300.0, threshold=5.0, load="delivered"
        )
        rebalancer.retire_shard(0)
        cluster.run_until(300.0)
        assert cluster.keys_of_shard(0) == ()
        assert all(a.dest != 0 for a in rebalancer.actions)
        drains = [a for a in rebalancer.actions if a.reason == "retire"]
        assert drains and all(a.source == 0 for a in drains)
        assert rebalancer.retired == frozenset({0})
        assert cluster.check_safety().is_safe

    def test_retire_validates_the_shard_index(self):
        cluster = make_cluster()
        driver = ClusterWorkloadDriver(cluster, dynamic=True)
        rebalancer = Rebalancer(cluster, driver=driver)
        with pytest.raises(ConfigError):
            rebalancer.retire_shard(4)
        with pytest.raises(ConfigError):
            rebalancer.retire_shard(-1)

    def test_cannot_retire_every_shard(self):
        cluster = make_cluster(shards=2, keys=4, n=8)
        driver = ClusterWorkloadDriver(cluster, dynamic=True)
        rebalancer = Rebalancer(cluster, driver=driver)
        rebalancer.retire_shard(0)
        with pytest.raises(ConfigError):
            rebalancer.retire_shard(1)


class TestDeterminism:
    @staticmethod
    def _storm_run():
        """A rebalanced run under churn: concurrent cross-key storms."""
        cluster = make_cluster(n=24, seed=13)
        cluster.attach_churn(rate=0.02, min_stay=15.0)
        driver, rebalancer = skewed_setup(cluster, horizon=260.0, budget=3)
        cluster.run_until(260.0)
        from repro.cluster.history import cluster_digest

        return cluster_digest(cluster.close()), rebalancer.digest()

    def test_concurrent_storm_replays_byte_identically(self):
        first = self._storm_run()
        second = self._storm_run()
        assert first == second

    def test_different_seed_perturbs_the_rebalance_digest(self):
        cluster_a = make_cluster(seed=9)
        _, rebal_a = skewed_setup(cluster_a, horizon=200.0)
        cluster_a.run_until(200.0)
        cluster_b = make_cluster(seed=10)
        _, rebal_b = skewed_setup(cluster_b, horizon=200.0)
        cluster_b.run_until(200.0)
        assert rebal_a.digest() != rebal_b.digest()

    def test_summary_reports_the_run_shape(self):
        cluster = make_cluster()
        _, rebalancer = skewed_setup(cluster, horizon=200.0)
        cluster.run_until(200.0)
        summary = rebalancer.summary()
        assert summary["samples"] == len(rebalancer.samples)
        assert summary["planned"] == len(rebalancer.actions)
        assert summary["peak_imbalance"] >= summary["final_imbalance"]
        assert summary["retired"] == []
