"""Unit tests for the keyed RegisterSpace and per-key history views."""

import pytest

from repro.core.history import History
from repro.core.register import BOTTOM, RegisterSpace, SINGLE_KEY, key_names
from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem
from repro.sim.errors import ConfigError


class TestKeyNames:
    def test_single_key_is_the_none_sentinel(self):
        assert key_names(1) == (SINGLE_KEY,) == (None,)

    def test_multi_key_names_are_stable(self):
        assert key_names(3) == ("k0", "k1", "k2")

    def test_zero_keys_rejected(self):
        with pytest.raises(ValueError):
            key_names(0)


class TestRegisterSpace:
    def test_cells_start_bottom(self):
        space = RegisterSpace(key_names(2))
        for key in space.keys:
            assert space.value(key) is BOTTOM
            assert space.sequence(key) == -1

    def test_resolve_defaults_to_first_key(self):
        single = RegisterSpace(key_names(1))
        assert single.resolve(None) is None
        multi = RegisterSpace(key_names(2))
        assert multi.resolve(None) == "k0"
        assert multi.resolve("k1") == "k1"
        with pytest.raises(KeyError):
            multi.resolve("nope")

    def test_adopt_only_when_strictly_newer(self):
        space = RegisterSpace(key_names(2))
        assert space.adopt("k0", "v1", 3)
        assert not space.adopt("k0", "stale", 3)
        assert not space.adopt("k0", "staler", 1)
        assert space.snapshot("k0") == ("v1", 3)
        assert space.snapshot("k1") == (BOTTOM, -1)  # isolated per key

    def test_bump_is_per_key(self):
        space = RegisterSpace(key_names(2))
        assert space.bump("k0") == 0
        assert space.bump("k0") == 1
        assert space.bump("k1") == 0

    def test_entries_in_key_order(self):
        space = RegisterSpace(key_names(3))
        space.install_all("v0", 0)
        space.install("k1", "v1", 4)
        assert space.entries() == (
            ("k0", "v0", 0),
            ("k1", "v1", 4),
            ("k2", "v0", 0),
        )


class TestSystemConfigKeys:
    def test_default_is_the_single_register(self):
        system = DynamicSystem(SystemConfig(n=3, seed=1))
        assert system.keys == (None,)
        node = system.node(system.seed_pids[0])
        assert node.space.is_single
        assert node.register_value == "v0"

    def test_keyed_system_seeds_every_key(self):
        system = DynamicSystem(SystemConfig(n=3, seed=1, keys=4))
        assert system.keys == ("k0", "k1", "k2", "k3")
        node = system.node(system.seed_pids[0])
        assert node.space.entries() == tuple(
            (key, "v0", 0) for key in system.keys
        )

    def test_invalid_key_count_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(n=3, keys=0)


class TestKeyedHistoryViews:
    def _keyed_system(self):
        system = DynamicSystem(
            SystemConfig(n=4, delta=5.0, protocol="sync", seed=2, keys=2)
        )
        system.write("a1", key="k0")
        system.run_for(6.0)
        system.write("b1", key="k1")
        system.run_for(6.0)
        system.read(system.seed_pids[1], key="k0")
        system.read(system.seed_pids[2], key="k1")
        system.spawn_joiner()
        system.run_for(20.0)
        system.close()
        return system

    def test_keys_lists_named_keys_sorted(self):
        history = self._keyed_system().history
        assert history.keys() == ["k0", "k1"]
        assert history.is_keyed

    def test_sub_history_filters_reads_and_writes(self):
        history = self._keyed_system().history
        sub = history.sub_history("k0")
        assert [op.argument for op in sub.writes()] == ["a1"]
        assert all(op.key == "k0" for op in sub.reads())
        assert sub.horizon == history.horizon

    def test_sub_history_join_view_exposes_per_key_adoption(self):
        history = self._keyed_system().history
        for key, expected in (("k0", "a1"), ("k1", "b1")):
            (join,) = history.sub_history(key).joins()
            assert join.done
            assert join.result.value == expected
            assert join.op_id == history.joins()[0].op_id

    def test_unkeyed_history_keys_is_none_singleton(self):
        history = History("v0")
        assert history.keys() == [None]
        assert not history.is_keyed
