"""Helpers to build synthetic histories for checker tests.

The checkers consume only operation handles, so tests can fabricate
histories directly, with exact timestamps, without running a simulation.
"""

from __future__ import annotations

from typing import Any

from repro.core.history import History
from repro.core.register import OP_JOIN, OP_READ, OP_WRITE
from repro.sim.operations import OperationHandle


def write(
    history: History,
    value: Any,
    start: float,
    end: float | None,
    pid: str = "writer",
    abandoned: bool = False,
) -> OperationHandle:
    """Record a write [start, end] (end=None: still pending / abandoned)."""
    handle = OperationHandle(OP_WRITE, pid, invoke_time=start, argument=value)
    if abandoned:
        handle._abandon(time=end if end is not None else start)
    elif end is not None:
        handle._complete("ok", time=end)
    history.record_operation(handle)
    return handle


def read(
    history: History,
    returned: Any,
    start: float,
    end: float | None,
    pid: str = "reader",
) -> OperationHandle:
    """Record a read [start, end] returning ``returned``."""
    handle = OperationHandle(OP_READ, pid, invoke_time=start)
    if end is not None:
        handle._complete(returned, time=end)
    history.record_operation(handle)
    return handle


def join(
    history: History,
    adopted: Any,
    sequence: int,
    start: float,
    end: float | None,
    pid: str = "joiner",
) -> OperationHandle:
    """Record a join [start, end] adopting ``adopted``."""
    from repro.protocols.common import JoinResult

    handle = OperationHandle(OP_JOIN, pid, invoke_time=start)
    if end is not None:
        handle._complete(JoinResult(adopted, sequence), time=end)
    history.record_operation(handle)
    return handle
