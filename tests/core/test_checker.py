"""Unit tests for the regularity, atomicity and liveness checkers.

Each test encodes one clause of the Section 2.2 specification (or of
the introduction's regular-vs-atomic distinction) against a hand-built
history with exact timestamps.
"""

import pytest

from repro.core.checker import (
    LivenessChecker,
    RegularityChecker,
    find_new_old_inversions,
)
from repro.core.history import History
from repro.sim.errors import CheckerError
from tests.core.helpers import join, read, write


class TestRegularityNoConcurrency:
    def test_read_of_initial_value_before_any_write(self):
        history = History("v0")
        read(history, "v0", 1.0, 1.0)
        assert RegularityChecker(history).check().is_safe

    def test_read_of_last_completed_write(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "v1", 3.0, 3.0)
        assert RegularityChecker(history).check().is_safe

    def test_stale_read_is_a_violation(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "v0", 3.0, 3.0)
        report = RegularityChecker(history).check()
        assert not report.is_safe
        assert report.violation_count == 1
        assert "last write completed" in report.violations[0].explanation

    def test_skipping_a_write_is_a_violation(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        write(history, "v2", 3.0, 4.0)
        read(history, "v1", 5.0, 5.0)  # v2 is the last completed write
        assert not RegularityChecker(history).check().is_safe

    def test_unwritten_value_is_a_violation(self):
        history = History("v0")
        read(history, "garbage", 1.0, 1.0)
        assert not RegularityChecker(history).check().is_safe

    def test_bottom_read_is_a_violation(self):
        history = History("v0")
        read(history, None, 1.0, 1.0)  # ⊥ was never written
        assert not RegularityChecker(history).check().is_safe


class TestRegularityWithConcurrency:
    def test_concurrent_read_may_return_old_value(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        read(history, "v0", 12.0, 13.0)
        assert RegularityChecker(history).check().is_safe

    def test_concurrent_read_may_return_new_value(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        read(history, "v1", 12.0, 13.0)
        assert RegularityChecker(history).check().is_safe

    def test_concurrent_read_cannot_return_older_than_last_completed(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        write(history, "v2", 10.0, 20.0)
        read(history, "v0", 12.0, 13.0)  # v0 predates completed v1
        assert not RegularityChecker(history).check().is_safe

    def test_read_overlapping_two_writes_may_return_either(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        write(history, "v2", 25.0, 35.0)
        # Read spans the gap: concurrent with both writes.
        for value in ("v1", "v2"):
            h = History("v0")
            write(h, "v1", 10.0, 20.0)
            write(h, "v2", 25.0, 35.0)
            read(h, value, 15.0, 30.0)
            assert RegularityChecker(h).check().is_safe, value

    def test_read_overlapping_pending_write(self):
        history = History("v0")
        write(history, "v1", 10.0, None)  # never completes
        read(history, "v1", 50.0, 51.0)
        assert RegularityChecker(history).check().is_safe

    def test_read_after_abandoned_write_may_return_old(self):
        history = History("v0")
        write(history, "v1", 10.0, 12.0, abandoned=True)
        read(history, "v0", 50.0, 51.0)
        assert RegularityChecker(history).check().is_safe

    def test_boundary_write_completing_at_read_invocation(self):
        """A write completing exactly at the read's invocation counts as
        completed-before (closed interval semantics)."""
        history = History("v0")
        write(history, "v1", 1.0, 5.0)
        read(history, "v0", 5.0, 5.0)
        assert not RegularityChecker(history).check().is_safe


class TestJoinChecking:
    def test_join_adopting_last_value(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        join(history, "v1", 1, 5.0, 8.0)
        assert RegularityChecker(history).check().is_safe

    def test_join_adopting_stale_value_is_flagged(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        join(history, "v0", 0, 5.0, 8.0)
        report = RegularityChecker(history).check()
        assert not report.is_safe
        assert report.violations[0].is_join

    def test_join_concurrent_with_write_may_adopt_old(self):
        history = History("v0")
        write(history, "v1", 5.0, 9.0)
        join(history, "v0", 0, 6.0, 8.0)
        assert RegularityChecker(history).check().is_safe

    def test_join_checking_can_be_disabled(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        join(history, "v0", 0, 5.0, 8.0)
        report = RegularityChecker(history, check_joins=False).check()
        assert report.is_safe
        assert report.checked_count == 0

    def test_plain_ok_joins_are_skipped(self):
        """Joins that do not expose an adopted value are not judged."""
        from repro.core.register import OP_JOIN
        from repro.sim.operations import OperationHandle

        history = History("v0")
        handle = OperationHandle(OP_JOIN, "p", invoke_time=1.0)
        handle._complete("ok", time=2.0)
        history.record_operation(handle)
        report = RegularityChecker(history).check()
        assert report.checked_count == 0


class TestNewOldInversions:
    def test_inversion_detected(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        read(history, "v1", 11.0, 12.0)  # earlier read, new value
        read(history, "v0", 13.0, 14.0)  # later read, old value
        report = find_new_old_inversions(history)
        assert report.safety.is_safe
        assert len(report.inversions) == 1
        assert report.is_regular_but_not_atomic
        inversion = report.inversions[0]
        assert inversion.earlier_write_index == 1
        assert inversion.later_write_index == 0

    def test_monotone_reads_are_atomic(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        read(history, "v0", 11.0, 12.0)
        read(history, "v1", 13.0, 14.0)
        report = find_new_old_inversions(history)
        assert report.is_atomic

    def test_overlapping_reads_cannot_invert(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        read(history, "v1", 11.0, 15.0)
        read(history, "v0", 12.0, 16.0)  # overlaps the first read
        report = find_new_old_inversions(history)
        assert report.is_atomic  # no order between the reads

    def test_violating_reads_excluded_from_inversion_scan(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "junk", 3.0, 4.0)  # violation, unknown value
        read(history, "v1", 5.0, 6.0)
        report = find_new_old_inversions(history)
        assert not report.safety.is_safe
        assert report.inversions == []
        assert not report.is_atomic
        assert "NOT EVEN REGULAR" in report.summary()


class TestLiveness:
    def test_all_completed_is_live(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "v1", 3.0, 3.0)
        history.close(10.0)
        report = LivenessChecker(history, grace=5.0).check()
        assert report.is_live
        assert report.completed == 2

    def test_abandoned_operations_are_excused(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0, abandoned=True)
        history.close(100.0)
        report = LivenessChecker(history, grace=5.0).check()
        assert report.is_live
        assert report.excused == 1

    def test_young_pending_operation_is_in_grace(self):
        history = History("v0")
        read(history, None, 98.0, None)
        history.close(100.0)
        report = LivenessChecker(history, grace=5.0).check()
        assert report.is_live
        assert report.in_grace == 1

    def test_old_pending_operation_is_stuck(self):
        history = History("v0")
        read(history, None, 10.0, None)
        history.close(100.0)
        report = LivenessChecker(history, grace=5.0).check()
        assert not report.is_live
        assert report.stuck[0].age == 90.0

    def test_latency_statistics(self):
        history = History("v0")
        write(history, "v1", 0.0, 4.0)
        write(history, "v2", 10.0, 12.0)
        history.close(20.0)
        report = LivenessChecker(history, grace=5.0).check()
        assert report.mean_latency("write") == 3.0
        assert report.max_latency("write") == 4.0
        with pytest.raises(CheckerError):
            report.mean_latency("read")

    def test_unclosed_history_rejected(self):
        history = History("v0")
        with pytest.raises(CheckerError):
            LivenessChecker(history, grace=5.0).check()

    def test_negative_grace_rejected(self):
        history = History("v0")
        history.close(1.0)
        with pytest.raises(CheckerError):
            LivenessChecker(history, grace=-1.0)


class TestReportSummaries:
    def test_safety_summary_mentions_counts(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "v0", 3.0, 3.0)
        summary = RegularityChecker(history).check().summary()
        assert "VIOLATED" in summary

    def test_violation_rate(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        read(history, "v0", 3.0, 3.0)
        read(history, "v1", 4.0, 4.0)
        report = RegularityChecker(history, check_joins=False).check()
        assert report.violation_rate == 0.5

    def test_empty_history_is_safe_and_live(self):
        history = History("v0")
        history.close(1.0)
        assert RegularityChecker(history).check().is_safe
        assert LivenessChecker(history, grace=0.0).check().is_live
