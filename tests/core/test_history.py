"""Unit tests for operation histories."""

import pytest

from repro.core.history import History
from repro.sim.errors import HistoryError
from tests.core.helpers import read, write


class TestRecording:
    def test_operations_accumulate(self):
        history = History("v0")
        write(history, "v1", 0.0, 1.0)
        read(history, "v1", 2.0, 2.0)
        assert len(history) == 2
        assert len(history.writes()) == 1
        assert len(history.reads()) == 1
        assert len(history.joins()) == 0

    def test_departures(self):
        history = History("v0")
        history.record_departure("p3", 7.0)
        assert history.departed_at("p3") == 7.0
        assert history.departed_at("p4") is None

    def test_close_freezes_horizon(self):
        history = History("v0")
        assert history.horizon is None
        history.close(100.0)
        assert history.horizon == 100.0


class TestWriteRecords:
    def test_initial_value_is_write_zero(self):
        history = History("v0")
        records = history.write_records()
        assert len(records) == 1
        assert records[0].index == 0
        assert records[0].value == "v0"
        assert records[0].completed_before(0.0)

    def test_serialized_writes_are_indexed_in_order(self):
        history = History("v0")
        write(history, "v2", 5.0, 6.0)  # recorded first but invoked later
        history._operations.reverse()  # recording order must not matter
        write(history, "v1", 1.0, 2.0)
        records = history.write_records()
        values = [r.value for r in records]
        assert values == ["v0", "v1", "v2"]

    def test_overlapping_writes_rejected(self):
        history = History("v0")
        write(history, "v1", 1.0, 5.0)
        write(history, "v2", 3.0, 7.0)
        with pytest.raises(HistoryError):
            history.write_records()

    def test_pending_write_stays_concurrent_forever(self):
        history = History("v0")
        record = write(history, "v1", 1.0, None)
        assert record.pending
        [_, rec] = history.write_records()
        assert not rec.completed
        assert rec.concurrent_with(100.0, 200.0)
        assert not rec.concurrent_with(0.0, 0.5)  # before its invocation

    def test_abandoned_write_stays_concurrent_forever(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0, abandoned=True)
        [_, rec] = history.write_records()
        assert rec.abandoned
        assert not rec.completed
        assert rec.concurrent_with(50.0, 60.0)

    def test_completed_before_boundary(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        [_, rec] = history.write_records()
        assert rec.completed_before(2.0)
        assert not rec.completed_before(1.9)

    def test_concurrency_window(self):
        history = History("v0")
        write(history, "v1", 10.0, 20.0)
        [_, rec] = history.write_records()
        assert rec.concurrent_with(15.0, 16.0)  # inside
        assert rec.concurrent_with(5.0, 10.0)  # touches start
        assert rec.concurrent_with(19.0, 30.0)  # overlaps end
        assert not rec.concurrent_with(20.0, 30.0)  # starts at completion
        assert not rec.concurrent_with(0.0, 9.0)  # before


class TestValueMapping:
    def test_value_to_write(self):
        history = History("v0")
        write(history, "v1", 1.0, 2.0)
        mapping = history.value_to_write()
        assert mapping["v0"].index == 0
        assert mapping["v1"].index == 1

    def test_duplicate_values_rejected(self):
        history = History("v0")
        write(history, "dup", 1.0, 2.0)
        write(history, "dup", 3.0, 4.0)
        with pytest.raises(HistoryError):
            history.value_to_write()

    def test_initial_value_collision_rejected(self):
        history = History("v0")
        write(history, "v0", 1.0, 2.0)
        with pytest.raises(HistoryError):
            history.value_to_write()


class TestOperationFilters:
    def test_operations_by_kind(self):
        history = History("v0")
        write(history, "v1", 0.0, 1.0)
        read(history, "v1", 2.0, 2.0)
        read(history, "v1", 3.0, 3.0)
        assert len(history.operations("read")) == 2
        assert len(history.operations("write")) == 1
        assert len(history.operations()) == 3
        assert len(history.operations("join")) == 0

    def test_iteration_preserves_recording_order(self):
        history = History("v0")
        w = write(history, "v1", 0.0, 1.0)
        r = read(history, "v1", 2.0, 2.0)
        assert list(history) == [w, r]
