"""Integration tests: every experiment must reproduce its paper claim.

These are the repository's headline assertions — each experiment's
``verdict`` starts with ``REPRODUCED`` when the measured behaviour
matches the paper.  ``quick=True`` keeps horizons small; the full
parameterization behind ``EXPERIMENTS.md`` is the same code.
"""

import pytest

from repro.experiments import EXPERIMENTS

QUICK_KWARGS = {"seed": 0, "quick": True}


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_reproduces(experiment_id):
    result = EXPERIMENTS[experiment_id](**QUICK_KWARGS)
    assert result.verdict.startswith("REPRODUCED"), (
        f"{experiment_id} did not reproduce:\n{result.describe()}"
    )


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_result_is_well_formed(experiment_id):
    result = EXPERIMENTS[experiment_id](**QUICK_KWARGS)
    assert result.experiment_id == experiment_id
    assert result.rows, "an experiment must produce at least one row"
    assert result.paper_claim
    assert result.to_table()
    assert result.describe()


class TestSpecificShapes:
    """Spot-checks of the quantitative shapes the paper predicts."""

    def test_e4_bound_column_matches_formula(self):
        result = EXPERIMENTS["E4"](**QUICK_KWARGS)
        n = result.params["n"]
        delta = result.params["delta"]
        for row in result.rows:
            assert row["bound"] == pytest.approx(
                n * (1.0 - 3.0 * delta * row["c"]), abs=1e-9
            )
            assert row["first_window"] >= row["bound"] - 1e-9

    def test_e5_no_violations_below_cap(self):
        result = EXPERIMENTS["E5"](**QUICK_KWARGS)
        for row in result.rows:
            if row["c_over_cap"] < 1.0:
                assert row["violation_rate"] == 0.0
                assert row["stuck"] == 0
                assert row["join_lat_max"] <= 3 * result.params["delta"] + 1e-9

    def test_e6_horn_a_monotone_degradation(self):
        result = EXPERIMENTS["E6"](**QUICK_KWARGS)
        horn_a = [r for r in result.rows if r["horn"] == "A"]
        # More delay inflation must not make the timer protocol safer
        # (allowing noise: compare first vs last).
        assert horn_a[-1]["violation_rate"] >= horn_a[0]["violation_rate"]

    def test_e6_horn_b_all_blocked(self):
        result = EXPERIMENTS["E6"](**QUICK_KWARGS)
        horn_b = [r for r in result.rows if r["horn"] == "B"]
        assert horn_b
        assert all(r["victim_blocked"] for r in horn_b)

    def test_e9_sync_reads_are_free(self):
        result = EXPERIMENTS["E9"](**QUICK_KWARGS)
        sync_read = next(
            r for r in result.rows if r["protocol"] == "sync" and r["op"] == "read"
        )
        assert sync_read["max"] == 0.0
        es_read = next(
            r for r in result.rows if r["protocol"] == "es" and r["op"] == "read"
        )
        assert es_read["mean"] > 0.0

    def test_e10_abd_is_the_one_that_breaks(self):
        result = EXPERIMENTS["E10"](**QUICK_KWARGS)
        worst_churn = max(r["c"] for r in result.rows)
        for row in result.rows:
            if row["c"] == worst_churn:
                if row["protocol"] == "abd":
                    assert row["read_done_rate"] < 0.9
                else:
                    assert row["read_done_rate"] > 0.99

    def test_e11_join_collapse_at_cap_under_adversary(self):
        result = EXPERIMENTS["E11"](**QUICK_KWARGS)
        for row in result.rows:
            if row["policy"] == "oldest_first":
                if row["c_over_cap"] <= 0.95:
                    assert row["join_done_rate"] > 0.8
                if row["c_over_cap"] >= 1.3:
                    assert row["join_done_rate"] < 0.05


class TestE12Shapes:
    def test_burst_damages_joins_at_equal_average(self):
        result = EXPERIMENTS["E12"](**QUICK_KWARGS)
        rows = {row["regime"]: row for row in result.rows}
        assert rows["burst"]["join_done_rate"] < rows["constant"]["join_done_rate"]
        assert rows["constant"]["violations"] == 0
        assert rows["diurnal"]["peak_over_cap"] < 1.0
        assert rows["burst"]["peak_over_cap"] > 1.0


class TestE16Shapes:
    def test_rebalancer_pays_a_reported_amortized_cost(self):
        result = EXPERIMENTS["E16"](**QUICK_KWARGS)
        for row in result.rows:
            assert row["imbalance_rebalanced"] < row["imbalance_static"]
            assert row["unresolved"] == 0
            assert row["violations"] == 0
            # Handoffs are not free and the cost is reported, not hidden.
            assert row["committed"] > 0
            assert row["cost_per_commit"] > 0
