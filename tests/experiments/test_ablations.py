"""Tests for the A1–A4 ablations."""

import pytest

from repro.experiments.ablations import ABLATIONS

QUICK_KWARGS = {"seed": 0, "quick": True}


@pytest.mark.parametrize("ablation_id", sorted(ABLATIONS))
def test_ablation_reproduces(ablation_id):
    result = ABLATIONS[ablation_id](**QUICK_KWARGS)
    assert result.verdict.startswith("REPRODUCED"), result.describe()


class TestA1Shapes:
    def test_inversions_grow_with_spread(self):
        result = ABLATIONS["A1"](**QUICK_KWARGS)
        inversions = result.column("inversions")
        # Spreads are listed tight-to-loose: the count must not shrink.
        assert inversions == sorted(inversions)

    def test_all_runs_regular(self):
        result = ABLATIONS["A1"](**QUICK_KWARGS)
        assert all(result.column("regular"))


class TestA2Shapes:
    def test_naive_caught_only_on_departure_rounds(self):
        result = ABLATIONS["A2"](**QUICK_KWARGS)
        naive = next(r for r in result.rows if r["protocol"] == "naive")
        # Coin-flip departures: violations strictly between 0 and all.
        assert 0 < naive["violations"] < naive["rounds"]
        assert naive["stale_joins"] == naive["violations"]

    def test_full_protocol_never_caught(self):
        result = ABLATIONS["A2"](**QUICK_KWARGS)
        sync = next(r for r in result.rows if r["protocol"] == "sync")
        assert sync["violations"] == 0
        assert sync["stale_joins"] == 0


class TestA3Shapes:
    def test_latency_bounds_are_exact(self):
        result = ABLATIONS["A3"](**QUICK_KWARGS)
        baseline, optimized = result.rows
        assert baseline["max_join_latency"] == 15.0  # 3δ with δ=5
        assert optimized["max_join_latency"] == 11.0  # 2δ + δ' with δ'=1
        assert all(result.column("safe"))

    def test_custom_p2p_bound(self):
        result = ABLATIONS["A3"](seed=0, quick=True, p2p_delta=2.5)
        optimized = result.rows[1]
        assert optimized["expected_bound"] == 12.5  # 2δ + δ'


class TestA4Shapes:
    def test_optimistic_policy_creates_fast_joins(self):
        result = ABLATIONS["A4"](**QUICK_KWARGS)
        none_row, all_row = result.rows
        assert none_row["fast_fraction"] < all_row["fast_fraction"]
        assert all_row["mean_latency"] < none_row["mean_latency"]

    def test_both_policies_safe(self):
        result = ABLATIONS["A4"](**QUICK_KWARGS)
        assert all(result.column("safe"))


class TestA5Shapes:
    def test_serialized_writes_never_diverge(self):
        result = ABLATIONS["A5"](**QUICK_KWARGS)
        serial = next(r for r in result.rows if "one" in r["writers"])
        assert serial["diverged_rounds"] == 0
        assert serial["sn_collisions"] == 0

    def test_concurrent_writers_always_collide(self):
        result = ABLATIONS["A5"](**QUICK_KWARGS)
        concurrent = next(r for r in result.rows if "two" in r["writers"])
        assert concurrent["diverged_rounds"] == concurrent["rounds"]
        assert concurrent["sn_collisions"] == concurrent["rounds"]


class TestA6Shapes:
    def test_sub_majority_quorums_always_stale(self):
        result = ABLATIONS["A6"](**QUICK_KWARGS)
        for row in result.rows:
            if not row["intersecting"]:
                assert row["violation_rate"] == 1.0

    def test_majority_quorum_never_stale(self):
        result = ABLATIONS["A6"](**QUICK_KWARGS)
        majority = next(r for r in result.rows if r["intersecting"])
        assert majority["violations"] == 0

    def test_smaller_quorums_finish_writes_faster(self):
        result = ABLATIONS["A6"](**QUICK_KWARGS)
        latencies = result.column("write_latency")
        assert latencies == sorted(latencies)
