"""Unit tests for the experiment harness and table rendering."""

import pytest

from repro.experiments.harness import ExperimentResult, format_table
from repro.sim.errors import ExperimentError


def make_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EX",
        title="Example",
        paper_claim="claim text",
        params={"n": 5},
    )
    result.add_row(name="a", value=1.23456, flag=True)
    result.add_row(name="bb", value=7.0, flag=False)
    return result


class TestExperimentResult:
    def test_columns_come_from_first_row(self):
        result = make_result()
        assert result.columns == ("name", "value", "flag")

    def test_column_accessor(self):
        result = make_result()
        assert result.column("name") == ["a", "bb"]

    def test_unknown_column_rejected(self):
        with pytest.raises(ExperimentError):
            make_result().column("missing")

    def test_describe_includes_everything(self):
        result = make_result()
        result.notes.append("a note")
        result.verdict = "REPRODUCED"
        text = result.describe()
        assert "EX: Example" in text
        assert "claim text" in text
        assert "n=5" in text
        assert "a note" in text
        assert "REPRODUCED" in text


class TestEmptyAndErrorPaths:
    """The harness edge cases every engine-built experiment leans on."""

    def empty_result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="E0", title="Empty", paper_claim="claim"
        )

    def test_unknown_column_error_names_the_known_columns(self):
        with pytest.raises(ExperimentError) as excinfo:
            make_result().column("missing")
        message = str(excinfo.value)
        assert "missing" in message
        assert "name" in message and "value" in message and "flag" in message

    def test_column_on_a_rowless_result_is_unknown(self):
        # No rows ever added -> no columns exist yet.
        with pytest.raises(ExperimentError):
            self.empty_result().column("anything")

    def test_to_table_with_no_rows_renders_placeholder(self):
        assert self.empty_result().to_table() == "(no rows)"

    def test_describe_with_no_rows_no_params_no_notes_no_verdict(self):
        text = self.empty_result().describe()
        assert "E0: Empty" in text
        assert "(no rows)" in text
        assert "parameters:" not in text
        assert "note:" not in text
        assert "verdict:" not in text

    def test_describe_orders_notes_before_verdict(self):
        result = make_result()
        result.notes.extend(["first note", "second note"])
        result.verdict = "REPRODUCED: everything"
        lines = result.describe().splitlines()
        note_indices = [
            i for i, line in enumerate(lines) if line.startswith("note: ")
        ]
        verdict_indices = [
            i for i, line in enumerate(lines) if line.startswith("verdict: ")
        ]
        assert note_indices == sorted(note_indices)
        assert len(verdict_indices) == 1
        assert note_indices[-1] < verdict_indices[0]
        assert "note: first note" in lines
        assert "note: second note" in lines
        assert "verdict: REPRODUCED: everything" in lines

    def test_describe_with_verdict_but_no_notes(self):
        result = make_result()
        result.verdict = "PARTIAL: shrug"
        text = result.describe()
        assert "note:" not in text
        assert text.rstrip().endswith("verdict: PARTIAL: shrug")


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(("x", "longcol"), [{"x": 1, "longcol": "v"}])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "longcol" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_floats_are_compact(self):
        text = format_table(("v",), [{"v": 0.123456789}])
        assert "0.1235" in text

    def test_bools_render_yes_no(self):
        text = format_table(("f",), [{"f": True}, {"f": False}])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table(("a",), []) == "(no rows)"

    def test_missing_cell_renders_empty(self):
        text = format_table(("a", "b"), [{"a": 1}])
        assert text  # does not raise
