"""Unit tests for the experiment harness and table rendering."""

import pytest

from repro.experiments.harness import ExperimentResult, format_table
from repro.sim.errors import ExperimentError


def make_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="EX",
        title="Example",
        paper_claim="claim text",
        params={"n": 5},
    )
    result.add_row(name="a", value=1.23456, flag=True)
    result.add_row(name="bb", value=7.0, flag=False)
    return result


class TestExperimentResult:
    def test_columns_come_from_first_row(self):
        result = make_result()
        assert result.columns == ("name", "value", "flag")

    def test_column_accessor(self):
        result = make_result()
        assert result.column("name") == ["a", "bb"]

    def test_unknown_column_rejected(self):
        with pytest.raises(ExperimentError):
            make_result().column("missing")

    def test_describe_includes_everything(self):
        result = make_result()
        result.notes.append("a note")
        result.verdict = "REPRODUCED"
        text = result.describe()
        assert "EX: Example" in text
        assert "claim text" in text
        assert "n=5" in text
        assert "a note" in text
        assert "REPRODUCED" in text


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(("x", "longcol"), [{"x": 1, "longcol": "v"}])
        lines = text.splitlines()
        assert lines[0].startswith("x")
        assert "longcol" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_floats_are_compact(self):
        text = format_table(("v",), [{"v": 0.123456789}])
        assert "0.1235" in text

    def test_bools_render_yes_no(self):
        text = format_table(("f",), [{"f": True}, {"f": False}])
        assert "yes" in text and "no" in text

    def test_empty_rows(self):
        assert format_table(("a",), []) == "(no rows)"

    def test_missing_cell_renders_empty(self):
        text = format_table(("a", "b"), [{"a": 1}])
        assert text  # does not raise
