"""Unit tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    percentile,
    proportion,
    summarize,
    wilson_interval,
)
from repro.sim.errors import ExperimentError
from tests.conftest import make_system


class TestSummarize:
    def test_basic_moments(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stdev == pytest.approx(1.2909944, rel=1e-6)

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.stdev == 0.0
        assert summary.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])

    def test_format(self):
        text = summarize([1.0, 3.0]).format(precision=1)
        assert "2.0" in text and "k=2" in text


class TestProportion:
    def test_ratio(self):
        assert proportion(3, 4) == 0.75

    def test_zero_trials(self):
        assert proportion(0, 0) == 0.0

    def test_invalid(self):
        with pytest.raises(ExperimentError):
            proportion(5, 4)
        with pytest.raises(ExperimentError):
            proportion(-1, 4)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(8, 10)
        assert low < 0.8 < high

    def test_handles_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert high < 0.25
        low, high = wilson_interval(20, 20)
        assert low > 0.75
        assert high == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_more_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == 2.5

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 3.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            percentile([], 50.0)
        with pytest.raises(ExperimentError):
            percentile([1.0], 150.0)


class TestHistoryEdgeCases:
    """The helpers against the degenerate histories experiments can
    produce: no operations at all, a single operation, every operation
    abandoned by a departing process."""

    def test_empty_history_yields_no_latency_samples(self):
        system = make_system(n=2)
        system.run_until(10.0)
        report = system.check_liveness()
        assert report.latencies.get("read", []) == []
        with pytest.raises(ExperimentError):
            summarize(report.latencies.get("read", []))

    def test_single_op_history_summarizes_with_zero_spread(self):
        system = make_system(n=2)
        system.write("v1")
        system.run_until(20.0)
        report = system.check_liveness()
        summary = summarize(report.latencies["write"])
        assert summary.count == 1
        assert summary.stdev == 0.0
        assert summary.minimum == summary.maximum == summary.mean

    def test_all_ops_abandoned_produce_no_latencies(self):
        # A write and a join, both abandoned mid-flight by a leave (the
        # two non-instantaneous operation kinds).
        system = make_system(n=3)
        system.write("doomed")
        joiner = system.spawn_joiner()
        system.run_until(1.0)
        system.leave(system.writer_pid)
        system.leave(joiner)
        system.run_until(20.0)
        report = system.check_liveness()
        assert report.is_live  # abandoned operations are excused...
        assert report.excused == 2
        assert report.latencies.get("write", []) == []  # ...not measured
        assert proportion(report.completed, len(system.history)) == 0.0


class TestNumericEdgeCases:
    def test_summarize_identical_samples_has_zero_stdev(self):
        summary = summarize([4.0, 4.0, 4.0])
        assert summary.stdev == 0.0
        assert summary.mean == 4.0

    def test_percentile_with_duplicates(self):
        assert percentile([1.0, 1.0, 1.0, 9.0], 50.0) == 1.0

    def test_proportion_of_certainty(self):
        assert proportion(5, 5) == 1.0

    def test_wilson_interval_degenerate_extremes_stay_in_bounds(self):
        low, high = wilson_interval(0, 1)
        assert 0.0 <= low <= high <= 1.0
        low, high = wilson_interval(1, 1)
        assert 0.0 <= low <= high <= 1.0
