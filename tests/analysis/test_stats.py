"""Unit tests for the statistics helpers."""

import pytest

from repro.analysis.stats import (
    percentile,
    proportion,
    summarize,
    wilson_interval,
)
from repro.sim.errors import ExperimentError


class TestSummarize:
    def test_basic_moments(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.stdev == pytest.approx(1.2909944, rel=1e-6)

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.count == 1
        assert summary.stdev == 0.0
        assert summary.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize([])

    def test_format(self):
        text = summarize([1.0, 3.0]).format(precision=1)
        assert "2.0" in text and "k=2" in text


class TestProportion:
    def test_ratio(self):
        assert proportion(3, 4) == 0.75

    def test_zero_trials(self):
        assert proportion(0, 0) == 0.0

    def test_invalid(self):
        with pytest.raises(ExperimentError):
            proportion(5, 4)
        with pytest.raises(ExperimentError):
            proportion(-1, 4)


class TestWilson:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(8, 10)
        assert low < 0.8 < high

    def test_handles_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        assert high < 0.25
        low, high = wilson_interval(20, 20)
        assert low > 0.75
        assert high == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrows_with_more_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(500, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == 2.5

    def test_extremes(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 100.0) == 3.0

    def test_single_value(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            percentile([], 50.0)
        with pytest.raises(ExperimentError):
            percentile([1.0], 150.0)
