"""Failure injection: departures at the worst possible moments.

The model equates a leave with a crash (Section 2.1), so these tests
double as crash-tolerance tests.  Each scenario checks that the
observable history stays consistent — abandoned operations are excused,
surviving operations stay correct.
"""

import pytest

from repro.net.delay import EventuallySynchronousDelay
from tests.conftest import make_system

DELTA = 5.0


class TestWriterFailures:
    def test_writer_leaving_mid_write_abandons_it(self):
        system = make_system()
        handle = system.write("doomed")
        system.run_for(DELTA / 2)
        system.leave(system.writer_pid)
        system.run_for(2 * DELTA)
        assert handle.abandoned
        assert system.check_liveness().is_live  # excused, not stuck

    def test_abandoned_write_value_may_still_be_read(self):
        """The broadcast went out before the writer left: survivors may
        hold the value, and reading it is legal (the write is forever
        concurrent)."""
        system = make_system()
        system.write("doomed")
        system.run_for(DELTA / 2)
        system.leave(system.writer_pid)
        system.run_for(2 * DELTA)
        handles = [system.read(pid) for pid in system.active_pids()[:5]]
        system.run_for(DELTA)
        values = {h.result for h in handles}
        assert values <= {"doomed", "v0"}
        assert system.check_safety().is_safe

    def test_next_writer_can_take_over(self):
        """After the writer leaves, another process can write (the
        paper allows any number of writers as long as writes are
        serialized)."""
        system = make_system()
        system.write("v1")
        system.run_for(2 * DELTA)
        system.leave(system.writer_pid)
        successor = system.active_pids()[0]
        handle = system.write("v2", pid=successor)
        system.run_for(2 * DELTA)
        assert handle.done
        read = system.read(system.active_pids()[1])
        assert read.result == "v2"
        assert system.check_safety().is_safe


class TestMassDepartures:
    def test_sync_survives_half_the_system_leaving_at_once(self):
        system = make_system(n=20, seed=5)
        system.write("v1")
        system.run_for(2 * DELTA)
        for pid in system.seed_pids[10:]:
            system.leave(pid)
        handle = system.read(system.seed_pids[2])
        assert handle.result == "v1"
        joiner = system.spawn_joiner()
        system.run_for(4 * DELTA)
        assert system.node(joiner).is_active
        assert system.check_safety().is_safe

    def test_es_stalls_gracefully_below_majority(self):
        """Losing the active majority blocks quorum operations but never
        corrupts the register (stall, don't lie)."""
        system = make_system(protocol="es", n=11, seed=5)
        system.write("v1")
        system.run_for(6 * DELTA)
        for pid in system.seed_pids[:6]:  # 6 of 11 leave; 5 < majority
            if system.membership.is_present(pid):
                system.leave(pid)
        survivors = system.active_pids()
        handle = system.read(survivors[0])
        system.run_for(20 * DELTA)
        assert handle.pending  # stalled...
        assert system.check_safety().is_safe  # ...but never wrong

    def test_readers_leaving_mid_read_are_excused(self):
        system = make_system(protocol="es", n=11, seed=7)
        reader = system.seed_pids[4]
        handle = system.read(reader)
        system.leave(reader)
        system.run_for(6 * DELTA)
        assert handle.abandoned
        assert system.check_liveness(grace=6 * DELTA).is_live


class TestJoinerFailures:
    def test_joiner_leaving_mid_join_is_excused(self):
        system = make_system()
        pid = system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(DELTA)
        system.leave(pid)
        system.run_for(4 * DELTA)
        assert join.abandoned
        assert system.check_liveness().is_live

    def test_repliers_leaving_does_not_block_sync_join(self):
        """The sync join is timer-based: it terminates no matter what
        (Lemma 1 requires only that the *joiner* stays)."""
        system = make_system(n=10, seed=3)
        system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(DELTA + 0.5)
        # Everyone except the writer leaves mid-inquiry.
        for pid in system.seed_pids[1:]:
            system.leave(pid)
        system.run_for(3 * DELTA)
        assert join.done  # terminated regardless
        # It adopted the writer's value (the only reply that arrived).
        assert join.result.value == "v0"

    def test_es_join_blocks_when_repliers_vanish(self):
        """The ES join is quorum-based: losing the majority blocks it —
        exactly the liveness/safety trade Theorem 2 is about."""
        system = make_system(protocol="es", n=11, seed=3)
        system.spawn_joiner()
        join = system.history.joins()[0]
        for pid in system.seed_pids[:7]:
            system.leave(pid)
        system.run_for(20 * DELTA)
        assert join.pending


class TestChurnWithFailures:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_randomized_churn_plus_targeted_kills(self, seed):
        """Random churn plus killing the newest member every 20 ticks."""
        system = make_system(n=20, seed=seed, trace=False)
        system.attach_churn(rate=0.02)
        system.write("v1")
        for t in range(20, 101, 20):
            system.run_until(float(t))
            present = [
                r.pid
                for r in system.membership.iter_records()
                if r.present_now and r.pid != system.writer_pid
            ]
            newest = max(present, key=lambda pid: system.membership.record(pid).entered_at)
            system.leave(newest)
            if system.active_pids():
                system.read(system.active_pids()[-1])
        system.run_for(4 * DELTA)
        assert system.check_safety().is_safe
        assert system.check_liveness().is_live
