"""Determinism: the repository's foundational testing assumption.

Every stochastic choice flows through seeded named streams, so equal
configurations must produce byte-identical observable behaviour — ops,
messages, traces, checker verdicts.  These tests pin that down across
protocols and delay models.
"""

import pytest

from repro.net.delay import AsynchronousDelay, EventuallySynchronousDelay
from repro.workloads.generators import read_heavy_plan
from repro.workloads.schedule import WorkloadDriver
from tests.conftest import make_system


def run_fingerprint(protocol: str, seed: int, delay_factory=None) -> tuple:
    system = make_system(
        protocol=protocol,
        n=15 if protocol != "es" else 15,
        seed=seed,
        trace=True,
        delay=delay_factory() if delay_factory else None,
    )
    system.attach_churn(rate=0.01, min_stay=15.0)
    driver = WorkloadDriver(system)
    plan = read_heavy_plan(
        start=5.0,
        end=80.0,
        write_period=20.0,
        read_rate=0.5,
        rng=system.rng.stream("fp.plan"),
    )
    driver.install(plan)
    system.run_until(120.0)
    history = system.close()
    ops = tuple(
        (op.kind, op.process_id, op.invoke_time, op.response_time, str(op.argument))
        for op in history
    )
    trace_digest = tuple(
        (record.time, record.kind.value, record.process)
        for record in system.trace
    )
    return (
        ops,
        system.network.sent_count,
        system.network.delivered_count,
        system.network.dropped_count,
        system.broadcast.broadcast_count,
        len(trace_digest),
        hash(trace_digest),
        system.check_safety().violation_count,
    )


class TestBitwiseReproducibility:
    @pytest.mark.parametrize("protocol", ["sync", "naive", "es", "abd"])
    def test_same_seed_same_everything(self, protocol):
        assert run_fingerprint(protocol, 77) == run_fingerprint(protocol, 77)

    def test_different_seed_different_run(self):
        assert run_fingerprint("sync", 1) != run_fingerprint("sync", 2)

    def test_asynchronous_delays_are_reproducible(self):
        factory = lambda: AsynchronousDelay(mean=6.0)
        assert run_fingerprint("es", 5, factory) == run_fingerprint("es", 5, factory)

    def test_eventually_synchronous_reproducible(self):
        factory = lambda: EventuallySynchronousDelay(gst=30.0, delta=5.0)
        assert run_fingerprint("es", 9, factory) == run_fingerprint("es", 9, factory)


class TestTraceTransparency:
    """The trace fast path must be semantically invisible.

    With ``trace=False`` the kernel skips trace-record and label
    construction entirely; the operation history must nonetheless be
    byte-identical to the traced run — tracing is observation, never
    behaviour.
    """

    @pytest.mark.parametrize("protocol", ["sync", "es"])
    def test_trace_on_off_same_history(self, protocol):
        def ops_fingerprint(trace: bool) -> tuple:
            system = make_system(protocol=protocol, n=11, seed=13, trace=trace)
            system.attach_churn(rate=0.03, min_stay=15.0)
            driver = WorkloadDriver(system)
            plan = read_heavy_plan(
                start=5.0,
                end=80.0,
                write_period=20.0,
                read_rate=0.5,
                rng=system.rng.stream("fp.plan"),
            )
            driver.install(plan)
            system.run_until(120.0)
            history = system.close()
            return tuple(
                (op.kind, op.process_id, op.invoke_time, op.response_time,
                 str(op.argument))
                for op in history
            )

        assert ops_fingerprint(True) == ops_fingerprint(False)


class TestBenchDigestStability:
    def test_fixed_seed_digest_is_stable(self):
        """The bench artifact's determinism digest: two fixed-seed runs
        in one process must hash identically (the smoke check that the
        kernel refactor did not perturb operation histories)."""
        from repro.bench import history_digest

        assert history_digest() == history_digest()


class TestExperimentDeterminism:
    def test_experiments_are_reproducible(self):
        from repro.experiments import EXPERIMENTS

        for experiment_id in ("E4", "E9"):
            first = EXPERIMENTS[experiment_id](seed=3, quick=True)
            second = EXPERIMENTS[experiment_id](seed=3, quick=True)
            assert first.rows == second.rows, experiment_id
            assert first.verdict == second.verdict
