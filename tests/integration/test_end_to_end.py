"""End-to-end runs: long mixed workloads under churn, fully checked."""

import pytest

from repro.net.delay import EventuallySynchronousDelay
from repro.workloads.generators import read_heavy_plan, write_heavy_plan
from repro.workloads.schedule import WorkloadDriver
from tests.conftest import make_system

DELTA = 5.0


class TestSynchronousEndToEnd:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_long_run_under_churn_is_regular_and_live(self, seed):
        system = make_system(n=25, seed=seed, trace=False)
        system.attach_churn(rate=0.02)  # under the cap 1/(3δ) ≈ 0.067
        driver = WorkloadDriver(system)
        plan = read_heavy_plan(
            start=5.0,
            end=180.0,
            write_period=25.0,
            read_rate=1.0,
            rng=system.rng.stream("test.plan"),
        )
        driver.install(plan)
        system.run_until(220.0)
        assert system.check_safety().is_safe
        assert system.check_liveness().is_live

    def test_write_heavy_run_is_still_safe(self):
        system = make_system(n=15, seed=9, trace=False)
        system.attach_churn(rate=0.01)
        driver = WorkloadDriver(system)
        plan = write_heavy_plan(
            start=5.0,
            end=100.0,
            write_period=2 * DELTA,
            reads_per_write=3,
            rng=system.rng.stream("test.plan"),
        )
        driver.install(plan)
        system.run_until(140.0)
        assert system.check_safety().is_safe
        assert driver.stats.writes_issued >= 9

    def test_every_join_is_lemma3_compliant(self):
        """Lemma 3: each completed join adopted a legal value."""
        system = make_system(n=20, seed=4, trace=False)
        system.attach_churn(rate=0.03)
        driver = WorkloadDriver(system)
        plan = read_heavy_plan(
            start=5.0,
            end=120.0,
            write_period=20.0,
            read_rate=0.3,
            rng=system.rng.stream("test.plan"),
        )
        driver.install(plan)
        system.run_until(160.0)
        report = system.check_safety(check_joins=True)
        join_judgements = [j for j in report.judgements if j.is_join]
        assert join_judgements, "no joins completed?"
        assert all(j.valid for j in join_judgements)


class TestEventuallySynchronousEndToEnd:
    @pytest.mark.parametrize("gst", [0.0, 60.0])
    def test_runs_across_gst(self, gst):
        system = make_system(
            protocol="es",
            n=15,
            seed=6,
            trace=False,
            delay=EventuallySynchronousDelay(gst=gst, delta=DELTA, pre_gst_max=50.0),
        )
        system.attach_churn(rate=0.003, min_stay=3 * DELTA)
        driver = WorkloadDriver(system)
        plan = read_heavy_plan(
            start=5.0,
            end=200.0,
            write_period=40.0,
            read_rate=0.3,
            rng=system.rng.stream("test.plan"),
        )
        driver.install(plan)
        system.run_until(260.0)
        assert system.check_safety().is_safe
        assert system.check_liveness(grace=12 * DELTA).is_live

    def test_es_atomicity_not_guaranteed_but_regularity_is(self):
        """The ES protocol promises regularity; sequential quorum reads
        with write-back-free replies may invert, but must stay regular."""
        system = make_system(
            protocol="es",
            n=11,
            seed=8,
            trace=False,
            delay=EventuallySynchronousDelay(gst=0.0, delta=DELTA),
        )
        for t in (5.0, 40.0, 75.0):
            system.run_until(t)
            system.write()
            system.run_until(t + 2.0)
            for pid in system.active_pids()[2:6]:
                system.read(pid)
        system.run_until(140.0)
        assert system.check_safety().is_safe


class TestCrossProtocolAgreement:
    def test_all_protocols_serve_the_same_final_value(self):
        """After a quiet write, every protocol's readers agree."""
        for protocol, n in (("sync", 10), ("es", 11), ("abd", 10)):
            system = make_system(protocol=protocol, n=n, seed=2, trace=False)
            system.write("final")
            system.run_for(8 * DELTA)
            readers = system.active_pids()[1:4]
            handles = [system.read(pid) for pid in readers]
            system.run_for(8 * DELTA)
            values = {h.result for h in handles}
            assert values == {"final"}, protocol
