"""Seed-matrix soak: many independent universes, every one fully checked.

The single most valuable regression net for a protocol reproduction:
run both dynamic protocols across a grid of seeds and churn rates
(inside their assumptions), and require every run to be regular and
live.  A bug in any layer — kernel ordering, delivery bookkeeping,
churn accounting, protocol logic, checker — almost always surfaces
here first.
"""

import pytest

from repro.net.delay import EventuallySynchronousDelay
from repro.workloads.generators import read_heavy_plan
from repro.workloads.schedule import WorkloadDriver
from tests.conftest import make_system

SYNC_GRID = [
    (seed, churn) for seed in (101, 202, 303) for churn in (0.01, 0.04)
]

ES_GRID = [(seed, churn) for seed in (404, 505) for churn in (0.002, 0.005)]


@pytest.mark.parametrize("seed,churn", SYNC_GRID)
def test_sync_soak(seed, churn):
    """δ=5 ⇒ cap 1/15 ≈ 0.067; both rates are inside it."""
    system = make_system(n=20, seed=seed, trace=False)
    system.attach_churn(rate=churn)
    driver = WorkloadDriver(system)
    plan = read_heavy_plan(
        start=5.0,
        end=130.0,
        write_period=25.0,
        read_rate=0.8,
        rng=system.rng.stream("soak.plan"),
    )
    driver.install(plan)
    system.run_until(160.0)
    safety = system.check_safety()
    liveness = system.check_liveness()
    assert safety.is_safe, safety.summary()
    assert liveness.is_live, liveness.summary()
    assert driver.stats.writes_skipped == 0  # sync writes never overlap


@pytest.mark.parametrize("seed,churn", ES_GRID)
def test_es_soak(seed, churn):
    system = make_system(
        n=15,
        seed=seed,
        trace=False,
        protocol="es",
        delay=EventuallySynchronousDelay(gst=40.0, delta=5.0, pre_gst_max=40.0),
    )
    system.attach_churn(rate=churn, min_stay=15.0)
    driver = WorkloadDriver(system)
    plan = read_heavy_plan(
        start=5.0,
        end=150.0,
        write_period=40.0,
        read_rate=0.3,
        rng=system.rng.stream("soak.plan"),
    )
    driver.install(plan)
    system.run_until(200.0)
    safety = system.check_safety()
    liveness = system.check_liveness(grace=60.0)
    assert safety.is_safe, safety.summary()
    assert liveness.is_live, liveness.summary()


@pytest.mark.parametrize("seed", [606, 707])
def test_sync_soak_under_burst_profile(seed):
    """Sub-cap bursts (peak 0.9×cap) must stay flawless."""
    from repro.churn.profiles import BurstRate

    system = make_system(n=20, seed=seed, trace=False)
    cap = 1.0 / 15.0
    system.attach_churn(
        profile=BurstRate(
            base_rate=0.15 * cap,
            burst_rate=0.9 * cap,
            period=40.0,
            burst_length=10.0,
        )
    )
    driver = WorkloadDriver(system)
    plan = read_heavy_plan(
        start=5.0,
        end=130.0,
        write_period=30.0,
        read_rate=0.6,
        rng=system.rng.stream("soak.plan"),
    )
    driver.install(plan)
    system.run_until(160.0)
    assert system.check_safety().is_safe
    assert system.check_liveness().is_live
