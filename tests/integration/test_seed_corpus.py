"""The regression-seed corpus: found scenarios never regress.

``tests/corpus/seeds.json`` records every explorer scenario worth
keeping — violating runs (expected breakages of the paper's
hypotheses) and near-misses (faults fired, safety held) — together
with the verdict, checker counts and history digest observed when the
entry was recorded.  This suite replays each entry and asserts the
outcome is unchanged, so a scenario the explorer once found can never
silently change meaning.

The digests double as a determinism net: like the BENCH_kernel.json
digest, they may only change when a PR *intentionally* changes
scheduling, RNG draws or churn accounting — such a PR regenerates the
corpus (and says so) with::

    PYTHONPATH=src python tests/integration/test_seed_corpus.py --regen

The canonical scenario list lives in :data:`CORPUS_SCENARIOS` below;
regeneration re-runs it and rewrites the expectations.

Replay (and regeneration) goes through the shared execution engine —
each entry is a ``RunSpec`` of kind ``"scenario"``, the same path
``repro explore`` takes — so the corpus also guards the engine's
serial/parallel equivalence: outcomes must match the recorded digests
at whatever worker count this host runs.
"""

from __future__ import annotations

import functools
import json
from pathlib import Path

import pytest

from repro.exec import RunSpec, run_specs
from repro.workloads.explorer import ScenarioOutcome, ScenarioSpec, build_plan

CORPUS_PATH = Path(__file__).parent.parent / "corpus" / "seeds.json"

DELTA = 5.0
HORIZON = 120.0
N = 10


def _spec(name: str, plan_name: str, **overrides) -> tuple[str, ScenarioSpec]:
    plan = build_plan(plan_name, DELTA, HORIZON, N)
    return name, ScenarioSpec(
        n=N, delta=DELTA, horizon=HORIZON, plan=plan, **overrides
    )


#: The resharding-storm corpus shape: big enough for three shards of
#: six, small enough to replay fast.
CLUSTER_N = 18


def _cluster_spec(
    name: str, plan_name: str, **overrides
) -> tuple[str, ScenarioSpec]:
    plan = build_plan(plan_name, DELTA, HORIZON, CLUSTER_N)
    params = dict(
        n=CLUSTER_N, delta=DELTA, horizon=HORIZON, plan=plan,
        shards=3, keys=6, migrations=2,
    )
    params.update(overrides)
    return name, ScenarioSpec(**params)


#: The canonical corpus: one entry per scenario family the explorer
#: surfaced.  Violating entries document hypothesis breakage; safe
#: entries pin the near-miss boundary from the other side.
CORPUS_SCENARIOS: list[tuple[str, ScenarioSpec]] = [
    # -- expected breakages (out-of-model violations) ------------------
    _spec("sync-heavy-loss", "heavy-loss", protocol="sync", delay="sync", seed=0),
    _spec(
        "sync-partition-drop", "partition-drop", protocol="sync", delay="sync", seed=0
    ),
    _spec("sync-delay-spike", "delay-spike", protocol="sync", delay="sync", seed=0),
    _spec(
        "sync-under-es-delays", "none", protocol="sync", delay="es", seed=0
    ),  # the sync protocol needs the bound it assumes
    _spec(
        "abd-under-churn", "none", protocol="abd", delay="sync",
        churn_rate=0.02, seed=0,
    ),  # the paper's motivation: the static baseline breaks
    _spec(
        "combo-shrinks-to-partition", "combo", protocol="sync", delay="sync",
        churn_rate=0.02, seed=0,
    ),
    # -- near misses (faults fired, safety held) -----------------------
    _spec(
        "sync-light-loss-holds", "light-loss", protocol="sync", delay="sync",
        churn_rate=0.02, seed=0,
    ),
    _spec(
        "sync-writer-crash-holds", "writer-crash", protocol="sync", delay="sync",
        seed=0,
    ),
    _spec(
        "es-stalls-dont-lie", "heavy-loss", protocol="es", delay="sync",
        churn_rate=0.02, seed=0,
    ),  # quorums block under loss but never return stale values
    _spec(
        "es-partition-drop-holds", "partition-drop", protocol="es", delay="es",
        churn_rate=0.02, seed=0,
    ),
    # -- clean baselines ----------------------------------------------
    _spec("sync-baseline", "none", protocol="sync", delay="sync",
          churn_rate=0.02, seed=0),
    _spec("es-baseline", "none", protocol="es", delay="es",
          churn_rate=0.02, seed=0),
    # -- resharding storms (live migration under attack) ---------------
    _cluster_spec(
        "cluster-clean-migration", "none", churn_rate=0.02, seed=0,
    ),  # the baseline: both handoffs commit, everything stays judged
    _cluster_spec(
        "mig-loss-aborts-cleanly", "mig-loss", churn_rate=0.02, seed=0,
    ),  # total coordination loss is in-model: clean aborts, safety holds
    _cluster_spec(
        "mig-crash-install-commits", "mig-crash-install", seed=0,
    ),  # a dest replica dying mid-install still reaches full coverage
    _cluster_spec(
        "mig-storm-breaks", "mig-storm", churn_rate=0.02, seed=1,
    ),  # 35% register loss on top: out-of-model, breakage documented
    # -- rebalancing storms (policy-planned migration under attack) -----
    _cluster_spec(
        "rebal-clean-converges", "none", churn_rate=0.02, seed=0,
        migrations=0, rebalance=2,
    ),  # the policy plans its own storms; every one resolves, safety holds
    _cluster_spec(
        "rebal-loss-aborts-cleanly", "rebal-loss", churn_rate=0.02, seed=0,
        migrations=0, rebalance=2,
    ),  # total handoff-coordination loss: every policy move aborts clean
    _cluster_spec(
        "rebal-storm-breaks", "rebal-storm", churn_rate=0.02, seed=1,
        migrations=0, rebalance=2,
    ),  # register loss + dest crashes on top: out-of-model, documented
]


def _observed(outcome: ScenarioOutcome) -> dict:
    return {
        "verdict": outcome.verdict,
        "safe": outcome.safe,
        "violations": outcome.violation_count,
        "checked": outcome.checked_count,
        "live": outcome.live,
        "in_model": outcome.classification.in_model,
        "digest": outcome.digest,
    }


def _replay(named_specs: list[tuple[str, ScenarioSpec]]) -> dict[str, ScenarioOutcome]:
    """Replay scenarios through the shared execution engine.

    Each corpus entry becomes a ``RunSpec`` of kind ``"scenario"`` —
    the exact path ``repro explore`` runs — judged across all cores;
    outcomes come back in entry order and are keyed by entry name.
    """
    outcomes = run_specs(
        [
            RunSpec(kind="scenario", params=spec.to_dict(), label=name)
            for name, spec in named_specs
        ]
    )
    return dict(zip((name for name, _ in named_specs), outcomes))


@functools.lru_cache(maxsize=1)
def _replayed() -> dict[str, ScenarioOutcome]:
    """The recorded corpus, replayed once per test session."""
    return _replay(
        [
            (entry["name"], ScenarioSpec.from_dict(entry["spec"]))
            for entry in load_corpus()
        ]
    )


def regenerate() -> dict:
    """Re-run every canonical scenario and rebuild the corpus payload."""
    outcomes = _replay(CORPUS_SCENARIOS)
    entries = []
    for name, spec in CORPUS_SCENARIOS:
        entries.append(
            {
                "name": name,
                "spec": spec.to_dict(),
                "expect": _observed(outcomes[name]),
            }
        )
    return {"schema_version": 1, "entries": entries}


def load_corpus() -> list[dict]:
    if not CORPUS_PATH.exists():
        # The sync-check test below fails loudly in this case; keep
        # import (and --regen bootstrap) working.
        return []
    payload = json.loads(CORPUS_PATH.read_text())
    return payload["entries"]


def test_corpus_file_matches_the_canonical_scenario_list():
    """seeds.json must cover exactly the scenarios defined here."""
    recorded = [entry["name"] for entry in load_corpus()]
    assert recorded == [name for name, _ in CORPUS_SCENARIOS], (
        "tests/corpus/seeds.json is out of sync with CORPUS_SCENARIOS — "
        "regenerate it (see module docstring)"
    )


@pytest.mark.parametrize(
    "entry", load_corpus(), ids=lambda entry: entry["name"]
)
def test_corpus_seed_replays_to_the_recorded_verdict(entry):
    expect = entry["expect"]
    observed = _observed(_replayed()[entry["name"]])
    assert observed == expect, (
        f"corpus seed {entry['name']!r} no longer replays to its recorded "
        f"outcome; if this PR intentionally changed scheduling/RNG/churn "
        f"semantics, regenerate the corpus (see module docstring)"
    )


def test_corpus_keeps_documenting_the_boundary():
    """The corpus must retain both sides of the model boundary."""
    entries = load_corpus()
    verdicts = {entry["expect"]["verdict"] for entry in entries}
    assert "expected-breakage" in verdicts
    assert {"near-miss", "ok"} & verdicts
    assert not any(
        entry["expect"]["verdict"] == "bug" for entry in entries
    ), "an in-model bug must be fixed, not enshrined in the corpus"


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        CORPUS_PATH.parent.mkdir(parents=True, exist_ok=True)
        CORPUS_PATH.write_text(json.dumps(regenerate(), indent=2) + "\n")
        print(f"wrote {CORPUS_PATH}")
    else:
        print("usage: python tests/integration/test_seed_corpus.py --regen")
