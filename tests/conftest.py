"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.delay import SynchronousDelay
from repro.runtime.config import SystemConfig
from repro.runtime.system import DynamicSystem
from repro.sim.engine import EventScheduler
from repro.sim.membership import Membership
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog


@pytest.fixture
def engine() -> EventScheduler:
    return EventScheduler()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def membership() -> Membership:
    return Membership()


def make_system(**overrides) -> DynamicSystem:
    """A small synchronous system with test-friendly defaults."""
    params = {
        "n": 10,
        "delta": 5.0,
        "protocol": "sync",
        "seed": 42,
    }
    params.update(overrides)
    return DynamicSystem(SystemConfig(**params))


@pytest.fixture
def sync_system() -> DynamicSystem:
    return make_system()


@pytest.fixture
def es_system() -> DynamicSystem:
    return make_system(protocol="es", n=11)


@pytest.fixture
def abd_system() -> DynamicSystem:
    return make_system(protocol="abd")


@pytest.fixture
def delay_model() -> SynchronousDelay:
    return SynchronousDelay(delta=5.0)
