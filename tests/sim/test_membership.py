"""Unit tests for the membership registry and presence records."""

import pytest

from repro.sim.errors import ProcessError, UnknownProcessError
from repro.sim.membership import Membership, PresenceRecord
from repro.sim.process import SimProcess


def make_process(pid, engine):
    return SimProcess(pid, engine)


class TestPresenceRecord:
    def test_present_interval(self):
        record = PresenceRecord(pid="p", entered_at=2.0, left_at=8.0)
        assert not record.present_at(1.9)
        assert record.present_at(2.0)
        assert record.present_at(7.9)
        assert not record.present_at(8.0)

    def test_present_forever_without_leave(self):
        record = PresenceRecord(pid="p", entered_at=2.0)
        assert record.present_at(1e9)
        assert record.present_now

    def test_active_interval(self):
        record = PresenceRecord(pid="p", entered_at=0.0, activated_at=3.0, left_at=9.0)
        assert not record.active_at(2.9)
        assert record.active_at(3.0)
        assert record.active_at(8.9)
        assert not record.active_at(9.0)

    def test_never_activated_is_never_active(self):
        record = PresenceRecord(pid="p", entered_at=0.0)
        assert not record.active_at(100.0)

    def test_active_throughout_window(self):
        record = PresenceRecord(pid="p", entered_at=0.0, activated_at=3.0, left_at=20.0)
        assert record.active_throughout(3.0, 19.0)
        assert not record.active_throughout(2.0, 10.0)  # activated too late
        assert not record.active_throughout(5.0, 20.0)  # leaves at window end
        assert record.active_throughout(5.0, 19.5)


class TestMembership:
    def test_enter_and_lookup(self, engine, membership):
        process = make_process("p1", engine)
        membership.enter(process)
        assert "p1" in membership
        assert membership.is_present("p1")
        assert membership.process("p1") is process
        assert len(membership) == 1

    def test_identity_reuse_forbidden(self, engine, membership):
        membership.enter(make_process("p1", engine))
        with pytest.raises(ProcessError):
            membership.enter(make_process("p1", engine))

    def test_unknown_pid_raises(self, membership):
        with pytest.raises(UnknownProcessError):
            membership.process("ghost")
        with pytest.raises(UnknownProcessError):
            membership.record("ghost")

    def test_leave_removes_from_present(self, engine, membership):
        membership.enter(make_process("p1", engine))
        membership.leave("p1", 5.0)
        assert not membership.is_present("p1")
        assert "p1" in membership  # the record survives
        assert len(membership) == 0

    def test_double_leave_rejected(self, engine, membership):
        membership.enter(make_process("p1", engine))
        membership.leave("p1", 5.0)
        with pytest.raises(ProcessError):
            membership.leave("p1", 6.0)

    def test_mark_active_after_leave_rejected(self, engine, membership):
        membership.enter(make_process("p1", engine))
        membership.leave("p1", 5.0)
        with pytest.raises(ProcessError):
            membership.mark_active("p1", 6.0)

    def test_active_processes_requires_mark(self, engine, membership):
        p1, p2 = make_process("p1", engine), make_process("p2", engine)
        membership.enter(p1)
        membership.enter(p2)
        p1.mark_active()
        membership.mark_active("p1", 0.0)
        actives = membership.active_processes()
        assert [p.pid for p in actives] == ["p1"]

    def test_counting_queries(self, engine, membership):
        for i, activate in enumerate([True, True, False]):
            process = make_process(f"p{i}", engine)
            membership.enter(process)
            if activate:
                process.mark_active()
                membership.mark_active(f"p{i}", 1.0)
        membership.leave("p0", 10.0)
        assert membership.active_count_at(5.0) == 2
        assert membership.active_count_at(10.0) == 1
        assert membership.active_throughout_count(1.0, 9.0) == 2
        assert membership.active_throughout_count(1.0, 10.0) == 1

    def test_iter_records_in_entry_order(self, engine, membership):
        for pid in ("a", "b", "c"):
            membership.enter(make_process(pid, engine))
        assert [r.pid for r in membership.iter_records()] == ["a", "b", "c"]
