"""Unit tests for the process framework and the operation runner."""

from dataclasses import dataclass

import pytest

from repro.sim.engine import EventScheduler
from repro.sim.errors import ProcessDepartedError, ProcessError
from repro.sim.operations import Wait, WaitUntil
from repro.sim.process import ProcessMode, SimProcess


@dataclass(frozen=True)
class Ping:
    payload: str = "ping"


class EchoProcess(SimProcess):
    """A process that records delivered pings."""

    def __init__(self, pid: str, engine: EventScheduler) -> None:
        super().__init__(pid, engine)
        self.received: list[str] = []

    def on_ping(self, sender: str, msg: Ping) -> None:
        self.received.append(f"{sender}:{msg.payload}")


@dataclass(frozen=True)
class FakeMessage:
    sender: str
    payload: object


class TestLifecycle:
    def test_starts_listening(self, engine):
        process = EchoProcess("p1", engine)
        assert process.mode is ProcessMode.LISTENING
        assert process.present
        assert not process.is_active

    def test_mark_active(self, engine):
        process = EchoProcess("p1", engine)
        engine.run_until(4.0)
        process.mark_active()
        assert process.is_active
        assert process.activated_at == 4.0

    def test_double_activation_rejected(self, engine):
        process = EchoProcess("p1", engine)
        process.mark_active()
        with pytest.raises(ProcessError):
            process.mark_active()

    def test_departure_is_final(self, engine):
        process = EchoProcess("p1", engine)
        process.depart()
        assert not process.present
        assert process.mode is ProcessMode.DEPARTED
        with pytest.raises(ProcessDepartedError):
            process.mark_active()

    def test_departure_is_idempotent(self, engine):
        process = EchoProcess("p1", engine)
        process.depart()
        process.depart()

    def test_departed_process_ignores_messages(self, engine):
        process = EchoProcess("p1", engine)
        process.depart()
        process.deliver(FakeMessage("p2", Ping()))
        assert process.received == []


class TestDispatch:
    def test_message_routed_by_payload_type(self, engine):
        process = EchoProcess("p1", engine)
        process.deliver(FakeMessage("p2", Ping("hello")))
        assert process.received == ["p2:hello"]

    def test_unknown_payload_raises(self, engine):
        @dataclass(frozen=True)
        class Mystery:
            pass

        process = EchoProcess("p1", engine)
        with pytest.raises(ProcessError):
            process.deliver(FakeMessage("p2", Mystery()))

    def test_handler_lookup_is_cached_per_class(self, engine):
        process = EchoProcess("pa", engine)
        process.deliver(FakeMessage("p2", Ping("one")))
        cache = EchoProcess.__dict__["_dispatch_cache"]
        assert cache[Ping] is EchoProcess.on_ping
        # A second delivery (and a second instance) reuses the entry.
        other = EchoProcess("pb", engine)
        other.deliver(FakeMessage("p3", Ping("two")))
        assert EchoProcess.__dict__["_dispatch_cache"] is cache
        assert other.received == ["p3:two"]

    def test_subclass_override_gets_its_own_cache_entry(self, engine):
        class LoudEcho(EchoProcess):
            def on_ping(self, sender: str, msg: Ping) -> None:
                self.received.append(f"{sender}:{msg.payload.upper()}")

        base = EchoProcess("p1", engine)
        loud = LoudEcho("p2", engine)
        base.deliver(FakeMessage("x", Ping("soft")))
        loud.deliver(FakeMessage("x", Ping("soft")))
        assert base.received == ["x:soft"]
        assert loud.received == ["x:SOFT"]
        # The caches live on each class, never shared through MRO.
        assert LoudEcho.__dict__["_dispatch_cache"][Ping] is LoudEcho.on_ping
        assert EchoProcess.__dict__["_dispatch_cache"][Ping] is EchoProcess.on_ping


class TestOperationRunner:
    def test_wait_suspends_for_duration(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            yield Wait(3.0)
            return "done"

        handle = process.run_operation("op", body())
        assert handle.pending
        engine.run()
        assert handle.done
        assert handle.result == "done"
        assert handle.latency == 3.0

    def test_immediate_body_completes_synchronously(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            return 42
            yield  # pragma: no cover

        handle = process.run_operation("op", body())
        assert handle.done
        assert handle.result == 42
        assert handle.latency == 0.0

    def test_wait_until_wakes_on_message(self, engine):
        class Collector(EchoProcess):
            def op_body(self):
                yield WaitUntil(lambda: len(self.received) >= 2)
                return list(self.received)

        process = Collector("p1", engine)
        handle = process.run_operation("collect", process.op_body())
        assert handle.pending
        process.deliver(FakeMessage("a", Ping()))
        assert handle.pending
        process.deliver(FakeMessage("b", Ping()))
        assert handle.done
        assert len(handle.result) == 2

    def test_wait_until_already_true_continues(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            yield WaitUntil(lambda: True)
            return "fast"

        handle = process.run_operation("op", body())
        assert handle.done

    def test_notify_re_evaluates_conditions(self, engine):
        process = EchoProcess("p1", engine)
        flag = {"ready": False}

        def body():
            yield WaitUntil(lambda: flag["ready"])
            return "woken"

        handle = process.run_operation("op", body())
        assert handle.pending
        flag["ready"] = True
        process.notify()
        assert handle.done

    def test_mixed_effects(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            yield Wait(2.0)
            yield WaitUntil(lambda: len(process.received) >= 1)
            yield Wait(1.0)
            return engine.now

        handle = process.run_operation("op", body())
        engine.run()  # the Wait(2.0) elapses; condition still false
        assert handle.pending
        process.deliver(FakeMessage("x", Ping()))
        engine.run()  # the final Wait(1.0)
        assert handle.done
        assert handle.result == 3.0

    def test_departure_abandons_running_operation(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            yield Wait(10.0)
            return "never"

        handle = process.run_operation("op", body())
        engine.run_until(1.0)
        process.depart()
        engine.run()
        assert handle.abandoned

    def test_departed_process_cannot_invoke(self, engine):
        process = EchoProcess("p1", engine)
        process.depart()

        def body():
            yield Wait(1.0)

        with pytest.raises(ProcessDepartedError):
            process.run_operation("op", body())

    def test_bad_yield_value_raises(self, engine):
        process = EchoProcess("p1", engine)

        def body():
            yield "not an effect"

        with pytest.raises(ProcessError):
            process.run_operation("op", body())

    def test_concurrent_operations_on_one_process(self, engine):
        process = EchoProcess("p1", engine)

        def body(duration):
            yield Wait(duration)
            return duration

        slow = process.run_operation("slow", body(5.0))
        fast = process.run_operation("fast", body(1.0))
        engine.run()
        assert fast.done and slow.done
        assert fast.response_time == 1.0
        assert slow.response_time == 5.0
