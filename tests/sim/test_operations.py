"""Unit tests for operation handles and effects."""

import pytest

from repro.sim.errors import (
    OperationAbandonedError,
    OperationError,
    OperationPendingError,
)
from repro.sim.operations import (
    OperationHandle,
    OperationState,
    Wait,
    WaitUntil,
)


class TestEffects:
    def test_wait_stores_duration(self):
        assert Wait(3.0).duration == 3.0

    def test_wait_rejects_negative(self):
        with pytest.raises(OperationError):
            Wait(-1.0)

    def test_wait_zero_is_legal(self):
        assert Wait(0.0).duration == 0.0

    def test_wait_until_holds_predicate(self):
        effect = WaitUntil(lambda: True, label="test")
        assert effect.predicate() is True
        assert effect.label == "test"


class TestOperationHandle:
    def test_initial_state_is_pending(self):
        handle = OperationHandle("read", "p1", invoke_time=2.0)
        assert handle.pending
        assert not handle.done
        assert not handle.abandoned
        assert handle.state is OperationState.PENDING

    def test_result_raises_while_pending(self):
        handle = OperationHandle("read", "p1", invoke_time=2.0)
        with pytest.raises(OperationPendingError):
            handle.result

    def test_latency_raises_while_pending(self):
        handle = OperationHandle("read", "p1", invoke_time=2.0)
        with pytest.raises(OperationPendingError):
            handle.latency

    def test_completion(self):
        handle = OperationHandle("write", "p1", invoke_time=2.0, argument="v")
        handle._complete("ok", time=7.0)
        assert handle.done
        assert handle.result == "ok"
        assert handle.response_time == 7.0
        assert handle.latency == 5.0
        assert handle.argument == "v"

    def test_double_completion_rejected(self):
        handle = OperationHandle("write", "p1", invoke_time=0.0)
        handle._complete("ok", time=1.0)
        with pytest.raises(OperationError):
            handle._complete("again", time=2.0)

    def test_abandonment(self):
        handle = OperationHandle("join", "p1", invoke_time=0.0)
        handle._abandon(time=3.0)
        assert handle.abandoned
        assert handle.response_time is None
        with pytest.raises(OperationAbandonedError):
            handle.result

    def test_abandon_after_completion_is_noop(self):
        handle = OperationHandle("join", "p1", invoke_time=0.0)
        handle._complete("ok", time=1.0)
        handle._abandon(time=2.0)
        assert handle.done

    def test_op_ids_are_unique(self):
        a = OperationHandle("read", "p1", invoke_time=0.0)
        b = OperationHandle("read", "p1", invoke_time=0.0)
        assert a.op_id != b.op_id


class TestDoneCallbacks:
    def test_callback_fires_on_completion(self):
        handle = OperationHandle("read", "p1", invoke_time=0.0)
        seen = []
        handle.add_done_callback(seen.append)
        handle._complete("v", time=1.0)
        assert seen == [handle]

    def test_callback_fires_on_abandonment(self):
        handle = OperationHandle("read", "p1", invoke_time=0.0)
        seen = []
        handle.add_done_callback(seen.append)
        handle._abandon(time=1.0)
        assert seen == [handle]

    def test_late_registration_fires_immediately(self):
        handle = OperationHandle("read", "p1", invoke_time=0.0)
        handle._complete("v", time=1.0)
        seen = []
        handle.add_done_callback(seen.append)
        assert seen == [handle]
