"""CalendarScheduler edge cases the parity grid cannot reach.

The kernel-parity suite proves heap/calendar equivalence on full
protocol workloads; this file pins the calendar's *own* corners —
bucket-boundary instants, the overflow heap, cancel-storm compaction,
validation parity, and drain-time re-scheduling — with the heap
scheduler as the executable specification throughout.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.engine import CalendarScheduler, EventScheduler, Priority
from repro.sim.errors import SchedulerError

WIDTH = 1.0


def _pair() -> tuple[EventScheduler, CalendarScheduler]:
    return EventScheduler(), CalendarScheduler(bucket_width=WIDTH)


class TestConstruction:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(SchedulerError):
            CalendarScheduler(bucket_width=0.0)
        with pytest.raises(SchedulerError):
            CalendarScheduler(bucket_width=-1.0)

    def test_rejects_nonfinite_width(self):
        with pytest.raises(SchedulerError):
            CalendarScheduler(bucket_width=math.inf)
        with pytest.raises(SchedulerError):
            CalendarScheduler(bucket_width=math.nan)


class TestBucketBoundaries:
    """Instants on exact epoch boundaries must order like the heap."""

    def test_boundary_instants_fire_in_heap_order(self):
        heap, cal = _pair()
        fired_h: list = []
        fired_c: list = []
        # Exact multiples of the width land on bucket boundaries;
        # epsilon-neighbours straddle them.  Same schedule order, so
        # same sequence numbers — the firing orders must match exactly.
        instants = [2.0, 1.0, 1.0 - 1e-12, 1.0 + 1e-12, 3.0, 0.0, 2.0]
        for i, t in enumerate(instants):
            heap.schedule_at(t, fired_h.append, (t, i))
            cal.schedule_at(t, fired_c.append, (t, i))
        assert heap.run() == cal.run()
        assert fired_h == fired_c
        assert fired_c == sorted(fired_c)

    def test_same_instant_orders_by_priority_then_sequence(self):
        heap, cal = _pair()
        logs: dict[str, list] = {"heap": [], "cal": []}
        for name, engine in (("heap", heap), ("cal", cal)):
            log = logs[name]
            # Reverse-priority schedule order at one boundary instant:
            # the tuple order (priority, then sequence) must win, not
            # insertion order.
            engine.schedule_at(
                WIDTH, log.append, "probe", priority=Priority.PROBE
            )
            engine.schedule_at(
                WIDTH, log.append, "timer", priority=Priority.TIMER
            )
            engine.schedule_at(
                WIDTH, log.append, "delivery", priority=Priority.DELIVERY
            )
            engine.schedule_at(
                WIDTH, log.append, "timer2", priority=Priority.TIMER
            )
            engine.run()
        assert logs["heap"] == logs["cal"]
        assert logs["cal"] == ["delivery", "timer", "timer2", "probe"]

    def test_negative_zero_and_tiny_instants(self):
        heap, cal = _pair()
        order_h: list = []
        order_c: list = []
        for t in (0.0, -0.0, 5e-324, 1e-300):
            heap.schedule_at(t, order_h.append, t)
            cal.schedule_at(t, order_c.append, t)
        heap.run()
        cal.run()
        assert order_h == order_c


class TestValidationParity:
    """Both schedulers must reject exactly the same instants."""

    @pytest.mark.parametrize("instant", [math.inf, math.nan, -1.0])
    def test_rejects_bad_instants(self, instant):
        for engine in _pair():
            with pytest.raises(SchedulerError):
                engine.schedule_at(instant, lambda: None)

    def test_rejects_past_instants_after_advance(self):
        for engine in _pair():
            engine.schedule_at(5.0, lambda: None)
            engine.run()
            assert engine.now == 5.0
            with pytest.raises(SchedulerError):
                engine.schedule_at(4.0, lambda: None)

    def test_rejects_negative_delay_and_bad_horizon(self):
        for engine in _pair():
            with pytest.raises(SchedulerError):
                engine.schedule(-0.5, lambda: None)
            engine.schedule_at(2.0, lambda: None)
            engine.run_until(3.0)
            with pytest.raises(SchedulerError):
                engine.run_until(1.0)


class TestCancellation:
    def test_cancel_storm_triggers_compaction_and_preserves_order(self):
        heap, cal = _pair()
        for engine in (heap, cal):
            events = [
                engine.schedule_at(
                    float(i % 17) + 0.25, lambda: None, label=f"e{i}"
                )
                for i in range(400)
            ]
            # Cancel in a scattered pattern, most of the queue: the
            # dead/live ratio crosses the compaction threshold many
            # times over.
            for i, event in enumerate(events):
                if i % 5 != 0:
                    event.cancel()
            assert engine.pending_count == 80
        assert heap.run() == cal.run() == 80
        assert heap.now == cal.now

    def test_cancel_across_all_three_regions(self):
        """Overflow, active bucket, and future buckets all compact."""
        cal = CalendarScheduler(bucket_width=WIDTH)
        survivors: list = []
        # Populate future buckets.
        far = [cal.schedule_at(3.5, survivors.append, "far") for _ in range(6)]
        # Drive the clock into epoch 1, parking mid-bucket, so later
        # same-epoch pushes land in the overflow heap.
        cal.schedule_at(1.25, survivors.append, "early")
        cal.run_until(1.3)
        near = [
            cal.schedule_at(1.5, survivors.append, "near") for _ in range(6)
        ]
        for event in far[1:]:
            event.cancel()
        for event in near[1:]:
            event.cancel()
        cal.run()
        assert survivors == ["early", "near", "far"]
        assert cal.pending_count == 0

    def test_cancelled_before_active_bucket_sort(self):
        """Cancelling entries of a not-yet-activated bucket is safe."""
        cal = CalendarScheduler(bucket_width=WIDTH)
        fired: list = []
        keep = cal.schedule_at(2.5, fired.append, "keep")
        drop = cal.schedule_at(2.5, fired.append, "drop")
        drop.cancel()
        cal.run()
        assert fired == ["keep"]
        assert not keep.cancelled and drop.cancelled


class TestDrainReentry:
    def test_handler_schedules_into_current_instant(self):
        """call_soon from a firing handler lands in overflow and still
        fires within the same drain, after same-instant peers — exactly
        like the heap."""
        results = {}
        for name, engine in zip(("heap", "cal"), _pair()):
            fired: list = []

            def chain(engine=engine, fired=fired):
                fired.append("first")
                engine.call_soon(lambda: fired.append("soon"))

            engine.schedule_at(1.0, chain)
            engine.schedule_at(1.0, fired.append, "peer")
            engine.schedule_at(1.5, fired.append, "later")
            engine.run()
            results[name] = fired
        assert results["heap"] == results["cal"]
        # OPERATION priority outranks the TIMER peer at the same
        # instant?  No: the peer was scheduled first at TIMER(10) <
        # OPERATION(20), so it fires between — pinned by the heap run.
        assert results["cal"][-1] == "later"

    def test_handler_schedules_same_epoch_future_instant(self):
        """A push into the active epoch (but a later instant) must
        interleave correctly with the already-sorted bucket."""
        for engine in _pair():
            fired: list = []

            def spawn(engine=engine, fired=fired):
                fired.append("a")
                # 0.3 and 0.7 sit inside the active epoch-0 bucket;
                # 0.5 is already queued between them.
                engine.schedule_at(0.45, fired.append, "b")
                engine.schedule_at(0.75, fired.append, "d")

            engine.schedule_at(0.25, spawn)
            engine.schedule_at(0.5, fired.append, "c")
            engine.run()
            assert fired == ["a", "b", "c", "d"], fired

    def test_run_until_parks_and_resumes_across_epochs(self):
        for engine in _pair():
            fired: list = []
            for t in (0.5, 1.5, 2.5, 3.5):
                engine.schedule_at(t, fired.append, t)
            assert engine.run_until(2.0) == 2
            assert engine.now == 2.0
            assert fired == [0.5, 1.5]
            assert engine.pending_count == 2
            assert engine.next_event_time() == 2.5
            assert engine.run_until(10.0) == 2
            assert engine.now == 10.0
            assert fired == [0.5, 1.5, 2.5, 3.5]

    def test_not_reentrant(self):
        for engine in _pair():

            def reenter(engine=engine):
                with pytest.raises(SchedulerError):
                    engine.run()

            engine.schedule_at(1.0, reenter)
            engine.run()


class TestIntrospectionParity:
    def test_iter_pending_and_len(self):
        heap, cal = _pair()
        for engine in (heap, cal):
            engine.schedule_at(2.5, lambda: None, label="b")
            engine.schedule_at(0.5, lambda: None, label="a")
            engine.schedule_at(7.5, lambda: None, label="c")
        assert [e.label for e in heap.iter_pending()] == [
            e.label for e in cal.iter_pending()
        ] == ["a", "b", "c"]
        assert len(heap) == len(cal) == 3

    def test_step_parity(self):
        heap, cal = _pair()
        order_h: list = []
        order_c: list = []
        for t in (1.0, 0.25, 2.0):
            heap.schedule_at(t, order_h.append, t)
            cal.schedule_at(t, order_c.append, t)
        while heap.step():
            pass
        while cal.step():
            pass
        assert order_h == order_c == [0.25, 1.0, 2.0]
        assert not heap.step() and not cal.step()
        assert heap.now == cal.now == 2.0


class TestDifferentialRandomScripts:
    """Randomized schedule/cancel/run scripts, heap as the oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_random_script(self, seed):
        rng = random.Random(seed)
        heap, cal = _pair()
        fired_h: list = []
        fired_c: list = []
        pending_h: list = []
        pending_c: list = []
        for step in range(200):
            roll = rng.random()
            if roll < 0.55:
                # Occasionally land exactly on a bucket boundary.
                if rng.random() < 0.2:
                    instant = heap.now + float(rng.randrange(1, 5))
                else:
                    instant = heap.now + rng.random() * 4.0
                priority = rng.choice(
                    [Priority.DELIVERY, Priority.TIMER, Priority.PROBE]
                )
                pending_h.append(
                    heap.schedule_at(
                        instant, fired_h.append, step, priority=priority
                    )
                )
                pending_c.append(
                    cal.schedule_at(
                        instant, fired_c.append, step, priority=priority
                    )
                )
            elif roll < 0.75 and pending_h:
                index = rng.randrange(len(pending_h))
                pending_h.pop(index).cancel()
                pending_c.pop(index).cancel()
            else:
                horizon = heap.now + rng.random() * 3.0
                assert heap.run_until(horizon) == cal.run_until(horizon)
                assert heap.now == cal.now
                assert fired_h == fired_c
        assert heap.run() == cal.run()
        assert fired_h == fired_c
        assert heap.now == cal.now
        assert heap.pending_count == cal.pending_count == 0
