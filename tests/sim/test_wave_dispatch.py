"""Unit tests for the wave-handler cache (the batch-dispatch plane).

``SimProcess`` subclasses declare ``wave_handlers`` (payload class →
staticmethod name); ``_build_wave_cache`` resolves them into the batch
and single-recipient dispatch maps with one safety rule: a wave is only
trusted when it is at least as specific in the MRO as the ``on_<type>``
handler it replaces, so a subclass overriding a handler can never be
silently bypassed by an inherited wave.  These tests pin that rule, the
``<wave>_one`` resolution, the adapter fallback, and the generic
``deliver_batch`` loop's parity with per-recipient delivery.
"""

from dataclasses import dataclass

from repro.sim.engine import EventScheduler
from repro.sim.process import SimProcess, _build_wave_cache


@dataclass(frozen=True)
class Ping:
    tag: str


@dataclass(frozen=True)
class Pong:
    tag: str


class WavedNode(SimProcess):
    """Declares a wave (with a ``_one`` variant) for Ping only."""

    wave_handlers = {Ping: "_wave_ping"}

    def __init__(self, pid, engine):
        super().__init__(pid, engine)
        self.log = []

    def on_ping(self, sender, payload):
        self.log.append(("on_ping", sender, payload.tag))

    def on_pong(self, sender, payload):
        self.log.append(("on_pong", sender, payload.tag))

    @staticmethod
    def _wave_ping(network, sender, payload, procs):
        for proc in procs:
            proc.log.append(("wave", sender, payload.tag))

    @staticmethod
    def _wave_ping_one(network, sender, payload, proc):
        proc.log.append(("wave_one", sender, payload.tag))


class OverridingNode(WavedNode):
    """Overrides ``on_ping`` WITHOUT re-declaring the wave."""

    def on_ping(self, sender, payload):
        self.log.append(("override", sender, payload.tag))


class ReWavedNode(OverridingNode):
    """Overrides the handler AND ships a matching wave (no ``_one``)."""

    @staticmethod
    def _wave_ping(network, sender, payload, procs):
        for proc in procs:
            proc.log.append(("rewave", sender, payload.tag))


def test_wave_and_one_variant_resolve():
    waves, waves1 = _build_wave_cache(WavedNode)
    assert waves[Ping] is WavedNode.__dict__["_wave_ping"].__func__
    assert waves1[Ping] is WavedNode.__dict__["_wave_ping_one"].__func__
    assert Pong not in waves  # no wave declared for Pong


def test_handler_override_drops_the_inherited_wave():
    """The safety rule: an inherited wave would bypass the subclass's
    ``on_ping`` override, so the cache must not contain it."""
    waves, waves1 = _build_wave_cache(OverridingNode)
    assert Ping not in waves
    assert Ping not in waves1


def test_redeclared_wave_is_trusted_and_one_is_adapted():
    """A subclass shipping its own wave (as specific as its handler) is
    trusted again; without a fresh ``_one`` the stale inherited variant
    must NOT be used — the batch wave is adapted instead."""
    waves, waves1 = _build_wave_cache(ReWavedNode)
    assert waves[Ping] is ReWavedNode.__dict__["_wave_ping"].__func__
    one = waves1[Ping]
    assert one is not WavedNode.__dict__["_wave_ping_one"].__func__
    engine = EventScheduler()
    node = ReWavedNode("p1", engine)
    one(None, "p0", Ping("x"), node)  # the adapter wraps the batch wave
    assert node.log == [("rewave", "p0", "x")]


def test_instances_expose_the_class_cache():
    engine = EventScheduler()
    node = WavedNode("p1", engine)
    other = WavedNode("p2", engine)
    assert node._waves is other._waves  # built once per class
    node._waves1[Ping](None, "p0", Ping("hi"), node)
    assert node.log == [("wave_one", "p0", "hi")]


def test_default_deliver_batch_matches_per_recipient_delivery():
    """Un-waved payloads batch through the exact legacy loop — including
    the departed-process drop."""
    engine = EventScheduler()
    nodes = [WavedNode(f"p{i}", engine) for i in range(3)]
    nodes[1].depart()
    WavedNode.deliver_batch(None, "p9", Pong("t"), nodes)
    assert nodes[0].log == [("on_pong", "p9", "t")]
    assert nodes[1].log == []  # departed: dropped defensively
    assert nodes[2].log == [("on_pong", "p9", "t")]
