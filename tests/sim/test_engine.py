"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.engine import EventScheduler
from repro.sim.errors import SchedulerError
from repro.sim.events import Priority, SlabEntry


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        fired = []
        engine.schedule(5.0, fired.append, "late")
        engine.schedule(1.0, fired.append, "early")
        engine.schedule(3.0, fired.append, "middle")
        engine.run()
        assert fired == ["early", "middle", "late"]

    def test_clock_tracks_fired_event(self, engine):
        times = []
        engine.schedule(2.0, lambda: times.append(engine.now))
        engine.schedule(4.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [2.0, 4.0]
        assert engine.now == 4.0

    def test_schedule_at_absolute_time(self, engine):
        fired = []
        engine.schedule_at(7.0, fired.append, "x")
        engine.run()
        assert fired == ["x"]
        assert engine.now == 7.0

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SchedulerError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulerError):
            engine.schedule_at(4.0, lambda: None)

    def test_call_soon_fires_at_current_time(self, engine):
        fired = []
        engine.schedule(3.0, lambda: engine.call_soon(fired.append, engine.now))
        engine.run()
        assert fired == [3.0]


class TestSimultaneousEvents:
    def test_priority_orders_simultaneous_events(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, "churn", priority=Priority.CHURN)
        engine.schedule(1.0, fired.append, "delivery", priority=Priority.DELIVERY)
        engine.schedule(1.0, fired.append, "timer", priority=Priority.TIMER)
        engine.run()
        assert fired == ["delivery", "timer", "churn"]

    def test_sequence_breaks_remaining_ties(self, engine):
        fired = []
        for i in range(10):
            engine.schedule(1.0, fired.append, i, priority=Priority.TIMER)
        engine.run()
        assert fired == list(range(10))


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.schedule(1.0, fired.append, "nope")
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self, engine):
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_pending_count_excludes_cancelled(self, engine):
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        drop.cancel()
        assert engine.pending_count == 1
        assert len(engine) == 1
        keep.cancel()
        assert engine.pending_count == 0


class TestRunUntil:
    def test_run_until_stops_at_horizon(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, "in")
        engine.schedule(10.0, fired.append, "out")
        engine.run_until(5.0)
        assert fired == ["in"]
        assert engine.now == 5.0
        assert engine.pending_count == 1

    def test_run_until_includes_events_at_horizon(self, engine):
        fired = []
        engine.schedule(5.0, fired.append, "edge")
        engine.run_until(5.0)
        assert fired == ["edge"]

    def test_run_until_can_resume(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(8.0, fired.append, "b")
        engine.run_until(5.0)
        engine.run_until(10.0)
        assert fired == ["a", "b"]

    def test_run_until_past_horizon_rejected(self, engine):
        engine.run_until(5.0)
        with pytest.raises(SchedulerError):
            engine.run_until(4.0)

    def test_max_events_limits_execution(self, engine):
        fired = []
        for i in range(5):
            engine.schedule(float(i + 1), fired.append, i)
        executed = engine.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]


class TestHandlersSchedulingMore:
    def test_handler_can_schedule_followups(self, engine):
        fired = []

        def chain(depth: int) -> None:
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(1.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 4.0

    def test_fired_count_accumulates(self, engine):
        for i in range(4):
            engine.schedule(float(i), lambda: None)
        engine.run()
        assert engine.fired_count == 4

    def test_step_fires_exactly_one(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        assert engine.step() is True
        assert fired == ["a"]
        assert engine.step() is True
        assert engine.step() is False

    def test_iter_pending_in_firing_order(self, engine):
        engine.schedule(3.0, lambda: None, label="c")
        engine.schedule(1.0, lambda: None, label="a")
        engine.schedule(2.0, lambda: None, label="b")
        labels = [event.label for event in engine.iter_pending()]
        assert labels == ["a", "b", "c"]


class TestNonFiniteInstants:
    """NaN/inf instants must raise instead of corrupting heap order.

    A NaN in the heap compares false against everything, silently
    breaking the sift invariant; +inf would park an event that can
    never fire.  Both are rejected at schedule time.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_schedule_rejects_non_finite_delay(self, engine, bad):
        with pytest.raises(SchedulerError):
            engine.schedule(bad, lambda: None)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_schedule_at_rejects_non_finite_instant(self, engine, bad):
        with pytest.raises(SchedulerError):
            engine.schedule_at(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_schedule_slab_rejects_non_finite_instant(self, engine, bad):
        entry = _CountingSlab()
        with pytest.raises(SchedulerError):
            engine.schedule_slab(bad, Priority.DELIVERY, entry)
        assert engine.pending_count == 0

    def test_rejection_leaves_queue_usable(self, engine):
        fired = []
        engine.schedule(1.0, fired.append, "ok")
        with pytest.raises(SchedulerError):
            engine.schedule(float("nan"), fired.append, "bad")
        engine.run()
        assert fired == ["ok"]

    def test_run_until_rejects_non_finite_horizon(self, engine):
        with pytest.raises(SchedulerError):
            engine.run_until(float("nan"))
        with pytest.raises(SchedulerError):
            engine.run_until(float("inf"))


class _CountingSlab(SlabEntry):
    __slots__ = ("fired",)

    def __init__(self) -> None:
        self.fired = 0

    def fire(self) -> None:
        self.fired += 1


class TestHeapCompaction:
    """Lazy deletion must not let dead entries dominate the heap."""

    def test_cancel_storm_keeps_dead_bounded_by_live(self, engine):
        live = [engine.schedule(float(i + 1), lambda: None) for i in range(8)]
        doomed = [
            engine.schedule(float(i + 100), lambda: None) for i in range(1000)
        ]
        for handle in doomed:
            handle.cancel()
        # The invariant _note_cancelled maintains: dead heap slots never
        # outnumber live ones, so the queue stays O(live).
        assert engine._dead <= len(engine._queue) - engine._dead
        assert len(engine._queue) <= 2 * len(live)
        assert engine.pending_count == len(live)
        assert engine.run() == len(live)

    def test_interleaved_cancel_storms_stay_bounded(self, engine):
        keeper = engine.schedule(1e6, lambda: None)
        for _ in range(20):
            batch = [
                engine.schedule(float(i + 10), lambda: None) for i in range(50)
            ]
            for handle in batch:
                handle.cancel()
            assert engine._dead <= len(engine._queue) - engine._dead
        assert engine.pending_count == 1
        assert not keeper.cancelled

    def test_compaction_preserves_firing_order(self, engine):
        fired = []
        for i in range(6):
            engine.schedule(float(i + 1), fired.append, i)
        doomed = [
            engine.schedule(float(i + 50), fired.append, "no") for i in range(200)
        ]
        for handle in doomed:
            handle.cancel()
        engine.run()
        assert fired == list(range(6))
