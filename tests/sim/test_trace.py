"""Unit tests for the structured trace log."""

from repro.sim.trace import TraceKind, TraceLog


class TestRecording:
    def test_records_accumulate(self):
        log = TraceLog()
        log.record(1.0, TraceKind.ENTER, "p1")
        log.record(2.0, TraceKind.LEAVE, "p1")
        assert len(log) == 2
        assert log[0].kind is TraceKind.ENTER
        assert log[1].time == 2.0

    def test_details_are_kept(self):
        log = TraceLog()
        log.record(1.0, TraceKind.SEND, "p1", dest="p2", type="Inquiry")
        assert log[0].details == {"dest": "p2", "type": "Inquiry"}

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1.0, TraceKind.ENTER, "p1")
        assert len(log) == 0
        assert not log.enabled

    def test_capacity_bound_drops_overflow(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), TraceKind.NOTE)
        assert len(log) == 2
        assert log.dropped == 3


class TestQueries:
    def _populated(self) -> TraceLog:
        log = TraceLog()
        log.record(1.0, TraceKind.ENTER, "p1")
        log.record(2.0, TraceKind.ENTER, "p2")
        log.record(3.0, TraceKind.LEAVE, "p1")
        log.record(4.0, TraceKind.SEND, "p2", dest="p1")
        return log

    def test_filter_by_kind(self):
        log = self._populated()
        enters = log.filter(kind=TraceKind.ENTER)
        assert [r.process for r in enters] == ["p1", "p2"]

    def test_filter_by_process(self):
        log = self._populated()
        assert len(log.filter(process="p1")) == 2

    def test_filter_by_predicate(self):
        log = self._populated()
        late = log.filter(predicate=lambda r: r.time >= 3.0)
        assert len(late) == 2

    def test_combined_filters(self):
        log = self._populated()
        assert len(log.filter(kind=TraceKind.ENTER, process="p2")) == 1

    def test_count(self):
        log = self._populated()
        assert log.count(TraceKind.ENTER) == 2
        assert log.count(TraceKind.DROP) == 0

    def test_describe_truncates(self):
        log = self._populated()
        text = log.describe(limit=2)
        assert "2 more records" in text

    def test_record_describe_is_one_line(self):
        log = self._populated()
        assert "\n" not in log[0].describe()

    def test_iteration(self):
        log = self._populated()
        assert len(list(log)) == 4
