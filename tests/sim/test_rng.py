"""Unit tests for the named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")

    def test_varies_with_name(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_varies_with_root(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(123456, "stream") < 2**64


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(seed=7)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_are_independent(self):
        registry = RngRegistry(seed=7)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        first = [RngRegistry(seed=9).stream("x").random() for _ in range(3)]
        second = [RngRegistry(seed=9).stream("x").random() for _ in range(3)]
        assert first == second

    def test_stream_isolation(self):
        """Draws from one stream must not perturb another."""
        registry_a = RngRegistry(seed=5)
        registry_b = RngRegistry(seed=5)
        # Consume heavily from an unrelated stream in registry_a only.
        for _ in range(100):
            registry_a.stream("noise").random()
        assert (
            registry_a.stream("signal").random()
            == registry_b.stream("signal").random()
        )

    def test_fork_gives_independent_universe(self):
        base = RngRegistry(seed=3)
        fork_a = base.fork("rep1")
        fork_b = base.fork("rep2")
        assert fork_a.seed != fork_b.seed
        assert fork_a.stream("x").random() != fork_b.stream("x").random()

    def test_fork_deterministic(self):
        assert RngRegistry(3).fork("r").seed == RngRegistry(3).fork("r").seed

    def test_seed_property(self):
        assert RngRegistry(seed=11).seed == 11
