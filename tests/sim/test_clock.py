"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import START_OF_TIME, VirtualClock
from repro.sim.errors import ClockError


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == START_OF_TIME == 0.0

    def test_starts_at_custom_time(self):
        assert VirtualClock(start=7.5).now == 7.5

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            VirtualClock(start=-1.0)

    def test_advances_forward(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_instant_is_allowed(self):
        clock = VirtualClock(start=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_rejects_moving_backwards(self):
        clock = VirtualClock(start=5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.999)

    def test_coerces_to_float(self):
        clock = VirtualClock()
        clock.advance_to(3)
        assert isinstance(clock.now, float)

    def test_repr_mentions_now(self):
        assert "3.5" in repr(VirtualClock(start=3.5))
