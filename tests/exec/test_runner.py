"""Unit tests for the Runner: ordering, worker counts, serial parity."""

from repro.exec import Runner, RunSpec, execute, run_specs
from repro.exec import runner as runner_module
from repro.sim.rng import derive_seed

#: A cheap, deterministic, picklable cell: derive_seed itself.
_KIND = "repro.sim.rng:derive_seed"


def _specs(count: int) -> list[RunSpec]:
    return [
        RunSpec(kind=_KIND, params={"root_seed": 9, "name": f"cell:{i}"})
        for i in range(count)
    ]


class TestRunner:
    def test_execute_runs_one_spec_in_process(self):
        (spec,) = _specs(1)
        assert execute(spec) == derive_seed(9, "cell:0")

    def test_results_come_back_in_spec_order(self):
        expected = [derive_seed(9, f"cell:{i}") for i in range(12)]
        assert Runner(workers=1).map(_specs(12)) == expected
        assert Runner(workers=4).map(_specs(12)) == expected

    def test_parallel_equals_serial(self):
        specs = _specs(9)
        assert Runner(workers=3).map(specs) == Runner(workers=1).map(specs)

    def test_single_spec_short_circuits_to_serial(self):
        # min(workers, 1 spec) == 1: no pool is spun up for one cell.
        assert Runner(workers=8).map(_specs(1)) == [derive_seed(9, "cell:0")]

    def test_empty_spec_list(self):
        assert Runner(workers=4).map([]) == []

    def test_workers_floor_is_one(self):
        assert Runner(workers=0).workers == 1
        assert Runner(workers=-3).workers == 1

    def test_default_workers_is_positive(self):
        assert Runner().workers >= 1

    def test_run_specs_convenience_matches_runner(self):
        specs = _specs(5)
        assert run_specs(specs, workers=2) == Runner(workers=2).map(specs)

    def test_pool_is_reused_across_map_calls(self):
        runner = Runner(workers=2)
        runner.map(_specs(4))
        pool = runner_module._POOLS.get(2)
        assert pool is not None
        runner.map(_specs(4))
        assert runner_module._POOLS.get(2) is pool

    def test_differently_sized_grids_share_one_pool(self):
        # The cache is keyed by the configured worker count, not by
        # min(workers, len(specs)): a battery of varied grids pays
        # worker startup once.
        runner = Runner(workers=2)
        runner.map(_specs(2))
        runner.map(_specs(7))
        runner.map(_specs(3))
        assert 2 in runner_module._POOLS

    def test_cell_oserror_propagates_without_serial_fallback(self):
        # A cell's own OSError must come back as that error, not be
        # mistaken for a pool failure (which would discard the pool and
        # silently re-run the whole sweep serially).
        import pytest

        specs = [
            RunSpec(kind="os:stat", params={"path": "/no-such-path-anywhere"})
            for _ in range(3)
        ]
        runner = Runner(workers=2)
        with pytest.raises(FileNotFoundError):
            runner.map(specs)
        assert 2 in runner_module._POOLS  # healthy pool kept

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        """Environments without process support take the serial path."""

        class NoFork:
            def __init__(self, max_workers):
                raise OSError("fork denied")

        monkeypatch.setattr(runner_module, "_POOLS", {})
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", NoFork)
        monkeypatch.setattr(runner_module, "_FALLBACKS", 1)  # already warned
        expected = [derive_seed(9, f"cell:{i}") for i in range(6)]
        assert Runner(workers=3).map(_specs(6)) == expected

    def test_lazy_spawn_failure_falls_back_to_serial(self, monkeypatch):
        """Pools that break only at first submit still fall back."""
        from concurrent.futures.process import BrokenProcessPool

        class BreaksOnMap:
            def __init__(self, max_workers):
                pass

            def map(self, fn, specs, chunksize=1):
                raise BrokenProcessPool("workers never started")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        monkeypatch.setattr(runner_module, "_POOLS", {})
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", BreaksOnMap)
        monkeypatch.setattr(runner_module, "_FALLBACKS", 1)  # already warned
        expected = [derive_seed(9, f"cell:{i}") for i in range(6)]
        assert Runner(workers=3).map(_specs(6)) == expected
        # The broken pool was discarded, not cached for the next call.
        assert runner_module._POOLS == {}


class TestFallbackCounters:
    """Per-Runner fallbacks are fresh and resettable; the module-level
    ``fallback_count`` stays a process-wide aggregate."""

    @staticmethod
    def _pool_less(monkeypatch):
        class NoFork:
            def __init__(self, max_workers):
                raise OSError("fork denied")

        monkeypatch.setattr(runner_module, "_POOLS", {})
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", NoFork)

    def test_per_runner_counter_counts_own_fallbacks_only(self, monkeypatch):
        self._pool_less(monkeypatch)
        monkeypatch.setattr(runner_module, "_FALLBACKS", 5)  # earlier sweeps
        runner = Runner(workers=3)
        assert runner.fallbacks == 0  # fresh despite process history
        runner.map(_specs(4))
        assert runner.fallbacks == 1
        runner.map(_specs(4))
        assert runner.fallbacks == 2
        assert runner_module.fallback_count() == 7  # aggregate kept counting

    def test_reset_clears_runner_but_not_aggregate(self, monkeypatch):
        self._pool_less(monkeypatch)
        monkeypatch.setattr(runner_module, "_FALLBACKS", 1)  # already warned
        runner = Runner(workers=3)
        runner.map(_specs(3))
        assert runner.fallbacks == 1
        runner.reset_fallbacks()
        assert runner.fallbacks == 0
        assert runner_module.fallback_count() == 2  # aggregate untouched
        runner.map(_specs(3))
        assert runner.fallbacks == 1  # counts again after the reset

    def test_serial_runs_never_count_as_fallbacks(self):
        runner = Runner(workers=1)
        runner.map(_specs(5))
        assert runner.fallbacks == 0


class TestGrouped:
    def test_splits_row_major(self):
        assert runner_module.grouped([1, 2, 3, 4, 5, 6], 2) == [
            [1, 2],
            [3, 4],
            [5, 6],
        ]

    def test_size_one(self):
        assert runner_module.grouped(["a", "b"], 1) == [["a"], ["b"]]

    def test_empty_results(self):
        assert runner_module.grouped([], 3) == []

    def test_ragged_results_rejected(self):
        import pytest

        from repro.sim.errors import ExperimentError

        with pytest.raises(ExperimentError):
            runner_module.grouped([1, 2, 3], 2)

    def test_nonpositive_size_rejected(self):
        import pytest

        from repro.sim.errors import ExperimentError

        with pytest.raises(ExperimentError):
            runner_module.grouped([1], 0)


class TestFallbackAccounting:
    def test_fallback_increments_counter_and_warns_once(self, monkeypatch):
        import warnings as warnings_module

        class NoFork:
            def __init__(self, max_workers):
                raise OSError("fork denied")

        monkeypatch.setattr(runner_module, "_POOLS", {})
        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", NoFork)
        monkeypatch.setattr(runner_module, "_FALLBACKS", 0)
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            Runner(workers=2).map(_specs(3))
            Runner(workers=2).map(_specs(3))
        assert runner_module.fallback_count() == 2
        # Only the first fallback warns; later ones stay quiet.
        assert len([w for w in caught if w.category is RuntimeWarning]) == 1


class TestScenarioKind:
    def test_scenario_cell_round_trips_a_spec(self):
        from repro.workloads.explorer import ScenarioSpec, run_scenario

        scenario = ScenarioSpec(protocol="sync", n=6, horizon=40.0, seed=2)
        spec = RunSpec(kind="scenario", params=scenario.to_dict())
        outcome = execute(spec)
        assert outcome.spec == scenario
        assert outcome.digest == run_scenario(scenario).digest
