"""Unit tests for RunSpec and the cell-kind registry."""

import pytest

from repro.exec import ENTRY_POINTS, RunSpec, resolve
from repro.sim.errors import ExperimentError
from repro.sim.rng import derive_seed


class TestRunSpec:
    def test_seeded_derives_the_documented_seed(self):
        spec = RunSpec.seeded("e04", 7, "e04:0.5", n=10, delta=5.0)
        assert spec.params["seed"] == derive_seed(7, "e04:0.5")
        assert spec.params["n"] == 10
        assert spec.label == "e04:0.5"

    def test_seeded_explicit_label_wins(self):
        spec = RunSpec.seeded("e04", 7, "e04:0.5", label="pretty")
        assert spec.label == "pretty"

    def test_round_trips_through_dict(self):
        spec = RunSpec(kind="scenario", params={"seed": 3, "n": 5}, label="x")
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_tolerates_missing_optionals(self):
        spec = RunSpec.from_dict({"kind": "scenario"})
        assert spec.params == {} and spec.label == ""


class TestRegistry:
    @pytest.mark.parametrize("kind", sorted(ENTRY_POINTS))
    def test_every_registered_kind_resolves_to_a_callable(self, kind):
        assert callable(resolve(kind))

    def test_module_colon_function_form_resolves(self):
        fn = resolve("repro.sim.rng:derive_seed")
        assert fn is derive_seed

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ExperimentError):
            resolve("no-such-kind")

    def test_unimportable_module_is_rejected(self):
        with pytest.raises(ExperimentError):
            resolve("repro.no_such_module:cell")

    def test_non_callable_entry_point_is_rejected(self):
        with pytest.raises(ExperimentError):
            resolve("repro.exec.registry:ENTRY_POINTS")
