"""Unit tests for the constant-churn model and the analytic bounds."""

import pytest

from repro.churn.model import (
    ConstantChurn,
    eventually_synchronous_churn_bound,
    lemma2_window_lower_bound,
    sharded_synchronous_churn_bound,
    synchronous_churn_bound,
)
from repro.sim.errors import ChurnError


class TestConstantChurn:
    def test_integer_quota(self):
        churn = ConstantChurn(rate=0.1, n=20)  # exactly 2 per tick
        assert [churn.refreshes_for_next_tick() for _ in range(4)] == [2, 2, 2, 2]

    def test_fractional_quota_carries(self):
        churn = ConstantChurn(rate=0.05, n=30)  # 1.5 per tick
        draws = [churn.refreshes_for_next_tick() for _ in range(4)]
        assert draws == [1, 2, 1, 2]
        assert sum(draws) == 6  # exact long-run average

    def test_sub_unit_quota_accumulates(self):
        churn = ConstantChurn(rate=0.01, n=25)  # 0.25 per tick
        draws = [churn.refreshes_for_next_tick() for _ in range(8)]
        assert sum(draws) == 2
        assert set(draws) <= {0, 1}

    def test_zero_rate(self):
        churn = ConstantChurn(rate=0.0, n=10)
        assert churn.refreshes_for_next_tick() == 0

    def test_reset_clears_carry(self):
        churn = ConstantChurn(rate=0.05, n=30)
        churn.refreshes_for_next_tick()
        churn.reset()
        assert churn.refreshes_for_next_tick() == 1  # same as a fresh start

    def test_default_start_is_one_period(self):
        assert ConstantChurn(rate=0.1, n=10).start == 1.0
        assert ConstantChurn(rate=0.1, n=10, period=2.5).start == 2.5

    def test_per_tick_quota(self):
        assert ConstantChurn(rate=0.1, n=20, period=0.5).per_tick_quota == 1.0

    def test_validation(self):
        with pytest.raises(ChurnError):
            ConstantChurn(rate=-0.1, n=10)
        with pytest.raises(ChurnError):
            ConstantChurn(rate=1.0, n=10)
        with pytest.raises(ChurnError):
            ConstantChurn(rate=0.1, n=0)
        with pytest.raises(ChurnError):
            ConstantChurn(rate=0.1, n=10, period=0.0)


class TestBounds:
    def test_synchronous_bound(self):
        assert synchronous_churn_bound(5.0) == pytest.approx(1.0 / 15.0)

    def test_synchronous_bound_validation(self):
        with pytest.raises(ChurnError):
            synchronous_churn_bound(0.0)

    def test_es_bound_involves_n(self):
        assert eventually_synchronous_churn_bound(5.0, 10) == pytest.approx(
            1.0 / 150.0
        )
        # Larger systems tolerate proportionally less churn rate.
        assert eventually_synchronous_churn_bound(5.0, 100) < synchronous_churn_bound(
            5.0
        )

    def test_es_bound_validation(self):
        with pytest.raises(ChurnError):
            eventually_synchronous_churn_bound(5.0, 0)

    def test_lemma2_bound_values(self):
        assert lemma2_window_lower_bound(60, 0.0, 5.0) == 60.0
        assert lemma2_window_lower_bound(60, 1.0 / 15.0, 5.0) == pytest.approx(0.0)
        assert lemma2_window_lower_bound(60, 1.0 / 30.0, 5.0) == pytest.approx(30.0)

    def test_sharded_bound_value(self):
        # The explorer's storm-matrix shape: n=18 over 3 shards.
        assert sharded_synchronous_churn_bound(5.0, 6) == pytest.approx(
            (1.0 - 1.0 / 6.0) / 15.0
        )

    def test_sharded_bound_is_strictly_below_the_classic_cap(self):
        for shard_n in (2, 3, 6, 10, 100):
            assert sharded_synchronous_churn_bound(
                5.0, shard_n
            ) < synchronous_churn_bound(5.0)

    def test_sharded_bound_is_monotone_in_shard_population(self):
        caps = [
            sharded_synchronous_churn_bound(5.0, shard_n)
            for shard_n in range(1, 20)
        ]
        assert caps == sorted(caps)

    def test_sharded_bound_approaches_the_classic_cap(self):
        assert sharded_synchronous_churn_bound(5.0, 10**6) == pytest.approx(
            synchronous_churn_bound(5.0), rel=1e-5
        )

    def test_single_process_shard_tolerates_no_churn(self):
        assert sharded_synchronous_churn_bound(5.0, 1) == 0.0

    def test_sharded_bound_validation(self):
        with pytest.raises(ChurnError):
            sharded_synchronous_churn_bound(0.0, 6)
        with pytest.raises(ChurnError):
            sharded_synchronous_churn_bound(5.0, 0)
