"""Unit tests for the non-constant churn rate profiles."""

import pytest

from repro.churn.profiles import (
    BurstRate,
    ConstantRate,
    DiurnalRate,
    TraceRate,
)
from repro.sim.errors import ChurnError
from tests.conftest import make_system


class TestConstantRate:
    def test_same_rate_everywhere(self):
        profile = ConstantRate(0.05)
        assert profile.rate_at(0.0) == 0.05
        assert profile.rate_at(1e6) == 0.05

    def test_average(self):
        assert ConstantRate(0.05).average_rate(0.0, 100.0) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ChurnError):
            ConstantRate(1.0)
        with pytest.raises(ChurnError):
            ConstantRate(-0.1)


class TestBurstRate:
    def _profile(self):
        return BurstRate(
            base_rate=0.01,
            burst_rate=0.2,
            period=50.0,
            burst_length=10.0,
            first_burst=100.0,
        )

    def test_quiet_before_first_burst(self):
        assert self._profile().rate_at(99.9) == 0.01

    def test_bursting_inside_window(self):
        profile = self._profile()
        assert profile.rate_at(100.0) == 0.2
        assert profile.rate_at(109.9) == 0.2

    def test_quiet_between_bursts(self):
        profile = self._profile()
        assert profile.rate_at(110.0) == 0.01
        assert profile.rate_at(149.9) == 0.01

    def test_bursts_repeat(self):
        profile = self._profile()
        assert profile.rate_at(150.0) == 0.2
        assert profile.rate_at(205.0) == 0.2

    def test_long_run_average(self):
        profile = self._profile()
        expected = 0.2 * 0.2 + 0.01 * 0.8  # duty cycle 10/50
        assert profile.long_run_average() == pytest.approx(expected)
        measured = profile.average_rate(100.0, 100.0 + 50 * 20, step=1.0)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_validation(self):
        with pytest.raises(ChurnError):
            BurstRate(0.3, 0.2, 50.0, 10.0)  # burst below base
        with pytest.raises(ChurnError):
            BurstRate(0.01, 0.2, 50.0, 60.0)  # burst longer than period


class TestDiurnalRate:
    def test_oscillates_around_base(self):
        profile = DiurnalRate(base_rate=0.1, amplitude=0.05, period=100.0)
        assert profile.rate_at(25.0) == pytest.approx(0.15)  # sin peak
        assert profile.rate_at(75.0) == pytest.approx(0.05)  # sin trough
        assert profile.rate_at(0.0) == pytest.approx(0.1)

    def test_clipped_at_zero(self):
        profile = DiurnalRate(base_rate=0.02, amplitude=0.5, period=100.0)
        assert profile.rate_at(75.0) == 0.0

    def test_validation(self):
        with pytest.raises(ChurnError):
            DiurnalRate(1.0, 0.1, 100.0)
        with pytest.raises(ChurnError):
            DiurnalRate(0.1, -0.1, 100.0)


class TestTraceRate:
    def test_step_function(self):
        profile = TraceRate([(0.0, 0.01), (10.0, 0.1), (20.0, 0.02)])
        assert profile.rate_at(5.0) == 0.01
        assert profile.rate_at(10.0) == 0.1
        assert profile.rate_at(15.0) == 0.1
        assert profile.rate_at(100.0) == 0.02

    def test_before_first_point_uses_first_rate(self):
        profile = TraceRate([(10.0, 0.1)])
        assert profile.rate_at(0.0) == 0.1

    def test_unsorted_input_is_sorted(self):
        profile = TraceRate([(20.0, 0.02), (0.0, 0.01)])
        assert profile.rate_at(5.0) == 0.01

    def test_validation(self):
        with pytest.raises(ChurnError):
            TraceRate([])
        with pytest.raises(ChurnError):
            TraceRate([(0.0, 1.5)])


class TestProfileDrivenController:
    def test_profile_overrides_constant_rate(self):
        system = make_system(n=20)
        profile = TraceRate([(0.0, 0.0), (10.0, 0.1), (20.0, 0.0)])
        controller = system.attach_churn(profile=profile)
        system.run_until(30.0)
        # Churn only in [10, 20): 0.1 * 20 = 2 refreshes per tick * 10.
        assert controller.leaves_executed == 20
        assert system.present_count() == 20

    def test_burst_profile_executes_burst_quota(self):
        system = make_system(n=20)
        profile = BurstRate(
            base_rate=0.0, burst_rate=0.25, period=40.0, burst_length=4.0,
            first_burst=10.0,
        )
        controller = system.attach_churn(profile=profile)
        system.run_until(20.0)
        assert controller.leaves_executed == 20  # 5/tick × 4 ticks

    def test_fractional_profile_rates_carry(self):
        system = make_system(n=10)
        controller = system.attach_churn(profile=ConstantRate(0.05))  # 0.5/tick
        system.run_until(40.0)
        assert controller.leaves_executed == 20
