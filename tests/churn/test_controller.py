"""Unit tests for the churn controller, driven against a real system."""

import pytest

from repro.sim.errors import ChurnError
from tests.conftest import make_system


class TestTicks:
    def test_population_stays_constant(self):
        system = make_system(n=20)
        system.attach_churn(rate=0.1)
        system.run_until(50.0)
        assert system.present_count() == 20

    def test_refresh_totals_match_rate(self):
        system = make_system(n=20)
        controller = system.attach_churn(rate=0.1)  # 2 per tick
        system.run_until(30.0)
        assert controller.ticks_executed == 30
        assert controller.leaves_executed == 60
        assert controller.joins_executed == 60

    def test_fractional_rate_long_run_average(self):
        system = make_system(n=10)
        controller = system.attach_churn(rate=0.05)  # 0.5 per tick
        system.run_until(40.0)
        assert controller.leaves_executed == 20

    def test_stop_at_halts_churn(self):
        system = make_system(n=20)
        controller = system.attach_churn(rate=0.1, stop_at=10.0)
        system.run_until(50.0)
        assert controller.leaves_executed == 20  # only the first 10 ticks

    def test_start_delays_first_tick(self):
        system = make_system(n=20)
        controller = system.attach_churn(rate=0.1, start=25.0)
        system.run_until(24.0)
        assert controller.ticks_executed == 0
        system.run_until(30.0)
        assert controller.ticks_executed == 6


class TestVictimSelection:
    def test_writer_protection(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.2, protect_writer=True)
        system.run_until(60.0)
        assert system.membership.is_present(system.writer_pid)

    def test_explicit_protection(self):
        system = make_system(n=10)
        vip = system.seed_pids[3]
        system.attach_churn(rate=0.2, protected=(vip,))
        system.run_until(60.0)
        assert system.membership.is_present(vip)

    def test_protect_after_attach(self):
        system = make_system(n=10)
        controller = system.attach_churn(rate=0.2)
        vip = system.seed_pids[5]
        if system.membership.is_present(vip):
            controller.protect(vip)
            system.run_until(60.0)
            if vip in controller.protected:
                assert system.membership.is_present(vip)

    def test_min_stay_spares_newcomers(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1, min_stay=5.0)
        system.run_until(40.0)
        for record in system.membership.iter_records():
            if record.left_at is not None and record.entered_at > 0:
                assert record.left_at - record.entered_at >= 5.0

    def test_oldest_first_evicts_in_entry_order(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1, protect_writer=False,
                            victim_policy="oldest_first")
        system.run_until(5.0)
        # After 5 ticks of 1 eviction each, the five oldest seeds are gone.
        departed = [
            r.pid for r in system.membership.iter_records() if r.left_at is not None
        ]
        assert departed == [f"p{i:04d}" for i in range(1, 6)]

    def test_invalid_policy_rejected(self):
        system = make_system(n=10)
        with pytest.raises(ChurnError):
            system.attach_churn(rate=0.1, victim_policy="youngest")

    def test_shortfall_recorded_when_everyone_protected(self):
        system = make_system(n=3)
        controller = system.attach_churn(
            rate=0.9, protected=tuple(system.seed_pids), min_stay=1e9
        )
        system.run_until(10.0)
        assert controller.shortfall > 0
        assert controller.leaves_executed == 0


class TestLifecycleRules:
    def test_double_attach_rejected(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1)
        from repro.sim.errors import ConfigError

        with pytest.raises(ConfigError):
            system.attach_churn(rate=0.1)

    def test_joiners_start_join_immediately(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1)
        system.run_until(2.0)
        joins = system.history.joins()
        assert joins, "churn should have spawned joiners"
        assert all(j.invoke_time >= 1.0 for j in joins)

    def test_departures_recorded_in_history(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1, protect_writer=False)
        system.run_until(10.0)
        departed = [
            r.pid for r in system.membership.iter_records() if r.left_at is not None
        ]
        assert departed
        for pid in departed:
            assert system.history.departed_at(pid) is not None
