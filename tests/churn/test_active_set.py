"""Unit tests for the active-set tracker."""

import pytest

from repro.churn.active_set import ActiveSetTracker
from repro.sim.errors import ChurnError
from tests.conftest import make_system


class TestSampling:
    def test_samples_accumulate_per_period(self):
        system = make_system(n=10)
        system.run_until(10.0)
        # Installed at t=0: samples at 0, 1, ..., 10.
        assert len(system.tracker.samples) == 11

    def test_initial_sample_sees_all_seeds_active(self):
        system = make_system(n=10)
        sample = system.tracker.samples[0]
        assert sample.time == 0.0
        assert sample.present == 10
        assert sample.active == 10
        assert sample.listening == 0

    def test_listening_counts_joiners(self):
        system = make_system(n=10)
        system.run_until(3.0)
        system.spawn_joiner()
        system.run_until(4.0)
        sample = system.tracker.samples[-1]
        assert sample.present == 11
        assert sample.listening == 1

    def test_min_and_mean_active(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1, protect_writer=False)
        system.run_until(30.0)
        assert 0 <= system.tracker.min_active() <= 10
        assert system.tracker.min_active() <= system.tracker.mean_active()
        assert system.tracker.min_present() >= 9  # population is constant-ish

    def test_double_install_rejected(self):
        system = make_system(n=5)
        with pytest.raises(ChurnError):
            system.tracker.install()

    def test_empty_tracker_raises(self, engine, membership):
        tracker = ActiveSetTracker(engine, membership)
        with pytest.raises(ChurnError):
            tracker.min_active()


class TestWindowStatistics:
    def test_no_churn_full_survival(self):
        system = make_system(n=10)
        system.run_until(30.0)
        stats = system.tracker.window_survivors(width=15.0, start=0.0, end=15.0)
        assert all(stat.survivors == 10 for stat in stats)

    def test_churn_erodes_windows(self):
        system = make_system(n=10)
        system.attach_churn(rate=0.1, protect_writer=False)
        system.run_until(40.0)
        first = system.tracker.window_survivors(width=15.0, start=0.0, end=0.0)[0]
        # 1 refresh per tick for 15 ticks out of 10 members: everyone
        # originally present could be gone, but the count is >= 0 and
        # strictly less than n.
        assert 0 <= first.survivors < 10

    def test_min_window_survivors(self):
        system = make_system(n=10)
        system.run_until(20.0)
        assert system.tracker.min_window_survivors(width=5.0) == 10

    def test_window_validation(self):
        system = make_system(n=5)
        system.run_until(5.0)
        with pytest.raises(ChurnError):
            system.tracker.window_survivors(width=0.0)
        with pytest.raises(ChurnError):
            system.tracker.window_survivors(width=1.0, step=0.0)

    def test_window_grid_bounds(self):
        system = make_system(n=5)
        system.run_until(20.0)
        stats = system.tracker.window_survivors(width=5.0, start=2.0, end=6.0, step=2.0)
        assert [stat.start for stat in stats] == [2.0, 4.0, 6.0]
        assert all(stat.width == 5.0 for stat in stats)
