"""Unit tests for ``repro bench --compare`` (artifact diffing)."""

import json
from pathlib import Path

import pytest

from repro.bench import compare_artifacts, worst_delta


def artifact(walls: dict[str, float], derived: dict[str, float] | None = None,
             determinism: dict[str, str] | None = None) -> dict:
    return {
        "benchmarks": [
            {"name": name, "wall_seconds": wall, "metric": "m", "value": 1}
            for name, wall in walls.items()
        ],
        "derived": dict(derived or {}),
        "determinism": dict(determinism or {}),
    }


class TestCompareArtifacts:
    def test_clean_comparison_flags_nothing(self):
        old = artifact({"a": 1.0, "b": 0.5}, {"speedup": 3.0})
        new = artifact({"a": 1.1, "b": 0.45}, {"speedup": 3.2})
        lines, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == []
        assert any("a: 1000.00 ms -> 1100.00 ms" in line for line in lines)

    def test_wall_time_regression_past_threshold_is_flagged(self):
        old = artifact({"hot_path": 1.0})
        new = artifact({"hot_path": 1.8})
        lines, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["hot_path"]
        assert any("REGRESSION" in line for line in lines)
        # The same delta passes a looser threshold.
        _, ok = compare_artifacts(old, new, threshold=1.0)
        assert ok == []

    def test_derived_speedup_drop_is_flagged(self):
        old = artifact({}, {"checker_regularity_speedup": 4.0})
        new = artifact({}, {"checker_regularity_speedup": 2.0})
        _, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["derived.checker_regularity_speedup"]

    def test_derived_overhead_rise_is_flagged(self):
        old = artifact({}, {"fault_gate_overhead": 1.1})
        new = artifact({}, {"fault_gate_overhead": 2.0})
        _, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["derived.fault_gate_overhead"]
        # An overhead *drop* is an improvement, never flagged.
        _, ok = compare_artifacts(new, old, threshold=0.5)
        assert ok == []

    def test_new_and_dropped_workloads_reported_not_flagged(self):
        old = artifact({"kept": 1.0, "dropped": 2.0})
        new = artifact({"kept": 1.0, "added": 9.0}, {"fresh_ratio": 1.0})
        lines, regressions = compare_artifacts(old, new, threshold=0.1)
        assert regressions == []
        assert any("added: new workload" in line for line in lines)
        assert any("dropped: workload dropped" in line for line in lines)
        assert any("derived.fresh_ratio: new ratio" in line for line in lines)

    def test_digest_changes_reported_informationally(self):
        old = artifact({}, determinism={"digest": "a" * 64, "faulted_digest": "b" * 64})
        new = artifact({}, determinism={"digest": "a" * 64, "faulted_digest": "c" * 64})
        lines, regressions = compare_artifacts(old, new, threshold=0.0)
        assert regressions == []
        assert any("determinism.digest: unchanged" in line for line in lines)
        assert any(
            line.startswith("determinism.faulted_digest: CHANGED") for line in lines
        )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_artifacts(artifact({}), artifact({}), threshold=-0.1)


class TestCommittedArtifactGuards:
    """The committed baseline must keep tracking the known bottlenecks.

    ``repro bench --compare BENCH_kernel.json`` only guards what the
    committed artifact records; this pins the entries that must never
    silently drop out of it.
    """

    def test_committed_artifact_tracks_the_known_bottlenecks(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
        payload = json.loads(path.read_text())
        names = {b["name"] for b in payload["benchmarks"]}
        # The PR 1 bottleneck (churn-tick join traffic) rides --compare,
        # not just the ROADMAP prose.
        assert "churn_tick_cost" in names
        # The sharded-cluster pair and its derived scaling ratio.
        assert {"cluster_single", "cluster_sharded"} <= names
        assert "shard_scaling" in payload["derived"]
        # The resharding workloads: hand-scheduled handoffs (PR 6) and
        # the policy-driven rebalancer storm (PR 7).
        assert {"migration_handoff", "rebalance_storm"} <= names
        # The population-scaling workloads guarding the batched-delivery
        # kernel (PR 8): fan-out and churn at n = 1000.
        assert {"broadcast_fanout_large", "churn_tick_large"} <= names
        # The million-node kernel (PR 10): the deep-queue hot-loop pair
        # behind derived.queue_speedup, the kilonode churn workload on
        # the calendar queue, and the n = 10^6 mesoscale cell.
        assert {
            "scheduler_hot_loop",
            "scheduler_hot_loop_calendar",
            "churn_tick_calendar",
            "mesoscale_million",
        } <= names
        assert "queue_speedup" in payload["derived"]
        for digest in (
            "digest",
            "faulted_digest",
            "keyed_digest",
            "cluster_digest",
            "migration_digest",
            "rebalance_digest",
        ):
            assert digest in payload["determinism"]


class TestWorstDelta:
    """The one-line PASS/FAIL summary's culprit finder."""

    def test_picks_the_worst_wall_ratio(self):
        old = artifact({"a": 1.0, "churn_tick_cost": 2.0})
        new = artifact({"a": 1.1, "churn_tick_cost": 3.0})
        assert worst_delta(old, new) == ("churn_tick_cost", 1.5)

    def test_derived_speedup_drop_normalized_above_one(self):
        # A speedup halving is a 2.0x delta — worse than a 1.3x wall rise.
        old = artifact({"a": 1.0}, {"checker_regularity_speedup": 4.0})
        new = artifact({"a": 1.3}, {"checker_regularity_speedup": 2.0})
        assert worst_delta(old, new) == ("derived.checker_regularity_speedup", 2.0)

    def test_derived_overhead_rise_normalized_above_one(self):
        old = artifact({}, {"fault_gate_overhead": 1.0})
        new = artifact({}, {"fault_gate_overhead": 1.4})
        name, delta = worst_delta(old, new)
        assert name == "derived.fault_gate_overhead"
        assert delta == pytest.approx(1.4)

    def test_speedup_collapse_to_zero_is_flagged_not_skipped(self):
        old = artifact({}, {"parallel_explore_speedup": 3.0})
        new = artifact({}, {"parallel_explore_speedup": 0.0})
        assert worst_delta(old, new) == (
            "derived.parallel_explore_speedup",
            float("inf"),
        )
        _, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["derived.parallel_explore_speedup"]

    def test_improvements_stay_below_one(self):
        old = artifact({"a": 2.0}, {"shard_scaling": 4.0})
        new = artifact({"a": 1.0}, {"shard_scaling": 5.0})
        name, delta = worst_delta(old, new)
        assert delta < 1.0

    def test_disjoint_artifacts_have_no_delta(self):
        assert worst_delta(artifact({"a": 1.0}), artifact({"b": 1.0})) is None
