"""Unit tests for ``repro bench --compare`` (artifact diffing)."""

import pytest

from repro.bench import compare_artifacts


def artifact(walls: dict[str, float], derived: dict[str, float] | None = None,
             determinism: dict[str, str] | None = None) -> dict:
    return {
        "benchmarks": [
            {"name": name, "wall_seconds": wall, "metric": "m", "value": 1}
            for name, wall in walls.items()
        ],
        "derived": dict(derived or {}),
        "determinism": dict(determinism or {}),
    }


class TestCompareArtifacts:
    def test_clean_comparison_flags_nothing(self):
        old = artifact({"a": 1.0, "b": 0.5}, {"speedup": 3.0})
        new = artifact({"a": 1.1, "b": 0.45}, {"speedup": 3.2})
        lines, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == []
        assert any("a: 1000.00 ms -> 1100.00 ms" in line for line in lines)

    def test_wall_time_regression_past_threshold_is_flagged(self):
        old = artifact({"hot_path": 1.0})
        new = artifact({"hot_path": 1.8})
        lines, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["hot_path"]
        assert any("REGRESSION" in line for line in lines)
        # The same delta passes a looser threshold.
        _, ok = compare_artifacts(old, new, threshold=1.0)
        assert ok == []

    def test_derived_speedup_drop_is_flagged(self):
        old = artifact({}, {"checker_regularity_speedup": 4.0})
        new = artifact({}, {"checker_regularity_speedup": 2.0})
        _, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["derived.checker_regularity_speedup"]

    def test_derived_overhead_rise_is_flagged(self):
        old = artifact({}, {"fault_gate_overhead": 1.1})
        new = artifact({}, {"fault_gate_overhead": 2.0})
        _, regressions = compare_artifacts(old, new, threshold=0.5)
        assert regressions == ["derived.fault_gate_overhead"]
        # An overhead *drop* is an improvement, never flagged.
        _, ok = compare_artifacts(new, old, threshold=0.5)
        assert ok == []

    def test_new_and_dropped_workloads_reported_not_flagged(self):
        old = artifact({"kept": 1.0, "dropped": 2.0})
        new = artifact({"kept": 1.0, "added": 9.0}, {"fresh_ratio": 1.0})
        lines, regressions = compare_artifacts(old, new, threshold=0.1)
        assert regressions == []
        assert any("added: new workload" in line for line in lines)
        assert any("dropped: workload dropped" in line for line in lines)
        assert any("derived.fresh_ratio: new ratio" in line for line in lines)

    def test_digest_changes_reported_informationally(self):
        old = artifact({}, determinism={"digest": "a" * 64, "faulted_digest": "b" * 64})
        new = artifact({}, determinism={"digest": "a" * 64, "faulted_digest": "c" * 64})
        lines, regressions = compare_artifacts(old, new, threshold=0.0)
        assert regressions == []
        assert any("determinism.digest: unchanged" in line for line in lines)
        assert any(
            line.startswith("determinism.faulted_digest: CHANGED") for line in lines
        )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_artifacts(artifact({}), artifact({}), threshold=-0.1)
