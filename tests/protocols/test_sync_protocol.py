"""Tests for the synchronous protocol (Figures 1 and 2), line by line."""

import pytest

from repro.core.register import BOTTOM
from repro.protocols.common import JoinResult
from repro.sim.errors import ProcessError
from repro.sim.trace import TraceKind
from tests.conftest import make_system

DELTA = 5.0


class TestSeeds:
    def test_seeds_start_active_with_initial_value(self, sync_system):
        for pid in sync_system.seed_pids:
            node = sync_system.node(pid)
            assert node.is_active
            assert node.register_value == "v0"
            assert node.sequence_number == 0

    def test_seed_count_matches_n(self, sync_system):
        assert len(sync_system.seed_pids) == 10


class TestFastRead:
    def test_read_is_instantaneous(self, sync_system):
        handle = sync_system.read(sync_system.seed_pids[1])
        assert handle.done
        assert handle.latency == 0.0
        assert handle.result == "v0"

    def test_read_sends_no_messages(self, sync_system):
        before = sync_system.network.sent_count
        before_bcast = sync_system.broadcast.broadcast_count
        sync_system.read(sync_system.seed_pids[2])
        assert sync_system.network.sent_count == before
        assert sync_system.broadcast.broadcast_count == before_bcast

    def test_read_before_join_completion_rejected(self, sync_system):
        pid = sync_system.spawn_joiner()
        with pytest.raises(ProcessError):
            sync_system.read(pid)


class TestWrite:
    def test_write_latency_is_exactly_delta(self, sync_system):
        handle = sync_system.write("v1")
        sync_system.run_for(2 * DELTA)
        assert handle.done
        assert handle.latency == DELTA

    def test_write_updates_writer_immediately(self, sync_system):
        sync_system.write("v1")
        writer = sync_system.node(sync_system.writer_pid)
        assert writer.register_value == "v1"  # Figure 2 line 01
        assert writer.sequence_number == 1

    def test_write_disseminates_to_all_present_within_delta(self, sync_system):
        sync_system.write("v1")
        sync_system.run_for(DELTA)
        for pid in sync_system.seed_pids:
            assert sync_system.node(pid).register_value == "v1"

    def test_sequence_numbers_increase_per_write(self, sync_system):
        sync_system.write("v1")
        sync_system.run_for(2 * DELTA)
        sync_system.write("v2")
        sync_system.run_for(2 * DELTA)
        writer = sync_system.node(sync_system.writer_pid)
        assert writer.sequence_number == 2

    def test_stale_write_does_not_downgrade(self, sync_system):
        """Figure 2 lines 03-04: only a higher sn updates the copy."""
        from repro.protocols.sync_reg import WriteMsg

        node = sync_system.node(sync_system.seed_pids[3])
        node.on_writemsg("x", WriteMsg("new", 5))
        node.on_writemsg("x", WriteMsg("old", 2))
        assert node.register_value == "new"
        assert node.sequence_number == 5

    def test_write_before_join_completion_rejected(self, sync_system):
        pid = sync_system.spawn_joiner()
        with pytest.raises(ProcessError):
            sync_system.node(pid).write("v9")


class TestJoin:
    def test_quiet_join_takes_exactly_three_delta(self, sync_system):
        """wait(δ) + inquiry wait(2δ) — Figure 1 lines 02 and 06."""
        pid = sync_system.spawn_joiner()
        join = sync_system.history.joins()[0]
        sync_system.run_for(4 * DELTA)
        assert join.done
        assert join.latency == 3 * DELTA
        assert sync_system.node(pid).is_active

    def test_quiet_join_adopts_initial_value(self, sync_system):
        sync_system.spawn_joiner()
        join = sync_system.history.joins()[0]
        sync_system.run_for(4 * DELTA)
        assert join.result == JoinResult("v0", 0)

    def test_join_hearing_a_write_skips_the_inquiry(self, sync_system):
        """Figure 1 line 03: register ≠ ⊥ after the wait — no inquiry."""
        pid = sync_system.spawn_joiner()
        join = sync_system.history.joins()[0]
        # The write is broadcast while the joiner is present: delivery
        # reaches it within δ, inside its line-02 wait.
        sync_system.write("v1")
        before = sync_system.broadcast.broadcast_count
        sync_system.run_for(4 * DELTA)
        assert join.done
        assert join.latency == DELTA  # only the line-02 wait
        assert join.result.value == "v1"
        # No INQUIRY broadcast went out.
        assert sync_system.broadcast.broadcast_count == before

    def test_join_double_invocation_rejected(self, sync_system):
        pid = sync_system.spawn_joiner()
        sync_system.run_for(4 * DELTA)
        with pytest.raises(ProcessError):
            sync_system.node(pid).join()

    def test_joiner_becomes_active_in_membership(self, sync_system):
        pid = sync_system.spawn_joiner()
        assert pid not in sync_system.active_pids()
        sync_system.run_for(4 * DELTA)
        assert pid in sync_system.active_pids()

    def test_join_is_judged_safe_by_the_checker(self, sync_system):
        sync_system.spawn_joiner()
        sync_system.run_for(4 * DELTA)
        assert sync_system.check_safety().is_safe


class TestDeferredReplies:
    """Figure 1 lines 13-16: a non-active process postpones its answer."""

    def test_concurrent_joiners_answer_each_other_after_activation(
        self, sync_system
    ):
        first = sync_system.spawn_joiner()
        sync_system.run_for(DELTA / 2)
        second = sync_system.spawn_joiner()
        sync_system.run_for(6 * DELTA)
        joins = sync_system.history.joins()
        assert all(j.done for j in joins)
        # The first joiner received the second's INQUIRY while not yet
        # active, deferred it (line 15), and answered at activation
        # (line 11): a REPLY from first to second must exist.
        replies = sync_system.trace.filter(
            kind=TraceKind.SEND,
            process=first,
            predicate=lambda r: r.details.get("type") == "Reply"
            and r.details.get("dest") == second,
        )
        assert replies, "the deferred reply of Figure 1 line 11 never happened"

    def test_active_process_replies_immediately(self, sync_system):
        sync_system.spawn_joiner()
        sync_system.run_for(DELTA + 0.1)  # the inquiry just went out
        sync_system.run_for(3 * DELTA)
        # Every active seed answered with a point-to-point Reply.
        sends = sync_system.trace.filter(
            kind=TraceKind.SEND,
            predicate=lambda r: r.details.get("type") == "Reply",
        )
        assert len(sends) >= len(sync_system.seed_pids)


class TestChurnSafety:
    def test_read_heavy_run_under_churn_is_safe_and_live(self):
        system = make_system(n=20, seed=11)
        system.attach_churn(rate=0.02)
        for t in (10.0, 20.0, 30.0):
            system.run_until(t)
            system.write(f"v{int(t)}")
            system.run_until(t + 2 * DELTA)
            for pid in system.active_pids()[:5]:
                system.read(pid)
        system.run_for(4 * DELTA)
        assert system.check_safety().is_safe
        assert system.check_liveness().is_live


class TestFootnote4Optimization:
    """Footnote 4: wait(δ + δ') replaces wait(2δ) when δ' is known."""

    def _dual_system(self, p2p_delta=1.0, **overrides):
        from repro.net.delay import DualBoundSynchronousDelay

        return make_system(
            delay=DualBoundSynchronousDelay(
                broadcast_delta=DELTA, p2p_delta=p2p_delta
            ),
            extra={"p2p_delta": p2p_delta},
            **overrides,
        )

    def test_optimized_join_latency(self):
        system = self._dual_system()
        system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(4 * DELTA)
        assert join.done
        assert join.latency == 2 * DELTA + 1.0  # δ (wait) + δ + δ' (inquiry)

    def test_optimized_join_is_safe(self):
        system = self._dual_system(seed=17)
        system.write("v1")
        system.run_for(2 * DELTA)
        system.spawn_joiner()
        system.run_for(4 * DELTA)
        join = system.history.joins()[0]
        assert join.result.value == "v1"
        assert system.check_safety().is_safe

    def test_without_extra_key_the_wait_stays_2delta(self):
        from repro.net.delay import DualBoundSynchronousDelay

        system = make_system(
            delay=DualBoundSynchronousDelay(broadcast_delta=DELTA, p2p_delta=1.0)
        )
        system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(4 * DELTA)
        assert join.latency == 3 * DELTA

    def test_invalid_p2p_bound_rejected(self):
        """A claimed δ' larger than δ fails fast, at node construction."""
        with pytest.raises(ProcessError):
            make_system(extra={"p2p_delta": 99.0})
