"""Unit tests for the shared quorum-phase machinery.

Every protocol's reply/ack/sequence bookkeeping now lives in
``QuorumPhase``/``PhaseTracker``; these tests pin the contracts the
three protocols lean on (deterministic best-reply selection, in-place
reopening, lazily stamped thresholds, per-key request counters).
"""

import pytest

from repro.protocols.common import (
    JoinResult,
    KeyedJoinResult,
    PhaseTracker,
    QuorumPhase,
    make_join_result,
)
from repro.core.register import RegisterSpace, key_names


class TestQuorumPhase:
    def test_timer_gated_phase_is_never_satisfied(self):
        phase = QuorumPhase()  # no threshold: closed by a clock
        phase.open()
        for who in ("a", "b", "c"):
            phase.offer(who, ((None, "v", 1),))
        assert phase.count == 3
        assert not phase.satisfied()

    def test_threshold_gates_satisfaction(self):
        phase = QuorumPhase(threshold=2)
        phase.open()
        phase.offer("a", ((None, "v", 1),))
        assert not phase.satisfied()
        phase.offer("b", ((None, "w", 2),))
        assert phase.satisfied()

    def test_reoffer_supersedes(self):
        phase = QuorumPhase(threshold=3)
        phase.open()
        phase.offer("a", ((None, "old", 1),))
        phase.offer("a", ((None, "new", 5),))
        assert phase.count == 1
        assert phase.best_for(None) == ("new", 5)

    def test_best_for_is_max_by_sequence_then_sender(self):
        phase = QuorumPhase()
        phase.open()
        phase.offer("b", ((None, "x", 3),))
        phase.offer("a", ((None, "y", 3),))  # tie on sn: sender id breaks it
        phase.offer("c", ((None, "z", 1),))
        assert phase.best_for(None) == ("x", 3)  # "b" > "a"

    def test_best_for_missing_key_is_none(self):
        phase = QuorumPhase()
        phase.open()
        phase.offer("a", (("k0", "v", 7),))
        assert phase.best_for("k1") is None

    def test_batched_entries_select_per_key(self):
        phase = QuorumPhase()
        phase.open()
        phase.offer("a", (("k0", "v0", 2), ("k1", "w0", 9)))
        phase.offer("b", (("k0", "v1", 5), ("k1", "w1", 3)))
        assert phase.best_for("k0") == ("v1", 5)
        assert phase.best_for("k1") == ("w0", 9)

    def test_open_resets_in_place_and_flags_active(self):
        phase = QuorumPhase(threshold=1)
        phase.open()
        phase.offer("a", ((None, "v", 1),))
        assert phase.active and phase.satisfied()
        phase.open()  # the next round: same object, clean slate
        assert phase.active
        assert phase.count == 0 and not phase.satisfied()
        phase.settle()
        assert not phase.active

    def test_acks_count_without_payload(self):
        phase = QuorumPhase(threshold=2)
        phase.open()
        phase.offer_ack("a")
        phase.offer_ack("b")
        assert phase.satisfied()
        assert phase.best_for(None) is None  # acks carry no entries


class TestPhaseTracker:
    def test_phase_per_key_is_stable(self):
        tracker = PhaseTracker(threshold=2)
        assert tracker.phase("k0") is tracker.phase("k0")
        assert tracker.phase("k0") is not tracker.phase("k1")

    def test_request_counters_are_per_key(self):
        tracker = PhaseTracker()
        assert tracker.current_request("k0") == 0  # request 0 = the join
        assert tracker.next_request("k0") == 1
        assert tracker.next_request("k0") == 2
        assert tracker.current_request("k0") == 2
        assert tracker.current_request("k1") == 0  # untouched

    def test_open_restamps_threshold(self):
        """ABD's universe (hence quorum) is known only lazily: a phase
        created early by a stray ack must still gate correctly."""
        tracker = PhaseTracker()  # threshold unknown yet
        early = tracker.phase("k0")
        assert early.threshold is None
        tracker.threshold = 3
        opened = tracker.open("k0")
        assert opened is early
        assert opened.threshold == 3

    def test_reading_keys_lists_open_phases_in_order(self):
        tracker = PhaseTracker(threshold=1)
        assert tracker.reading_keys() == []
        tracker.open("k1")
        tracker.open("k0")
        tracker.open(None)
        assert tracker.reading_keys() == [None, "k0", "k1"]
        tracker.phase("k1").settle()
        assert tracker.reading_keys() == [None, "k0"]


class TestJoinResults:
    def test_single_key_space_yields_classic_join_result(self):
        space = RegisterSpace(key_names(1))
        space.install_all("v0", 0)
        result = make_join_result(space)
        assert isinstance(result, JoinResult)
        assert (result.value, result.sequence, result.ok) == ("v0", 0, "ok")

    def test_multi_key_space_yields_keyed_join_result(self):
        space = RegisterSpace(key_names(3))
        space.install_all("v0", 0)
        space.install("k2", "hot", 7)
        result = make_join_result(space)
        assert isinstance(result, KeyedJoinResult)
        assert result.ok == "ok"
        assert result.value == "v0"  # default key's adoption, for old tooling
        assert result.for_key("k2") == JoinResult("hot", 7)
        assert result.for_key("k0") == JoinResult("v0", 0)
        with pytest.raises(KeyError):
            result.for_key("k9")


class TestRecordMany:
    """The batch-dispatch plane's aggregated quorum accounting."""

    def test_record_many_equals_repeated_offers(self):
        batched = QuorumPhase(threshold=3).open()
        looped = QuorumPhase(threshold=3).open()
        offers = [
            ("a", ((None, "v1", 1),)),
            ("b", ((None, "v2", 2),)),
            ("c", (("k0", "x", 5), ("k1", "y", 6))),
        ]
        batched.record_many(offers)
        for sender, entries in offers:
            looped.offer(sender, entries)
        assert batched.count == looped.count == 3
        assert batched.satisfied() and looped.satisfied()
        assert batched.senders() == looped.senders()
        for key in (None, "k0", "k1"):
            assert batched.best_for(key) == looped.best_for(key)

    def test_later_duplicates_supersede(self):
        phase = QuorumPhase(threshold=2).open()
        phase.record_many(
            [
                ("a", ((None, "stale", 1),)),
                ("a", ((None, "fresh", 9),)),
            ]
        )
        assert phase.count == 1  # one sender, superseded in place
        assert phase.best_for(None) == ("fresh", 9)

    def test_empty_batch_is_a_no_op(self):
        phase = QuorumPhase(threshold=1).open()
        phase.record_many([])
        assert phase.count == 0
        assert not phase.satisfied()

    def test_tracker_record_many_lands_in_the_keyed_phase(self):
        tracker = PhaseTracker(threshold=2)
        tracker.open("k0")
        tracker.record_many("k0", [("a", (("k0", "v", 3),)), ("b", ())])
        assert tracker.phase("k0").satisfied()
        assert tracker.phase("k0").best_for("k0") == ("v", 3)
        assert tracker.phase("k1").count == 0  # other keys untouched
