"""Tests for the deliberately broken no-wait variant (Figure 3(a))."""

from repro.protocols.sync_reg import NaiveSyncRegisterNode, SynchronousRegisterNode
from repro.workloads.scenarios import figure_3a, figure_3b
from tests.conftest import make_system

DELTA = 5.0


class TestNaiveJoinTiming:
    def test_join_skips_the_initial_wait(self):
        system = make_system(protocol="naive")
        system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(3 * DELTA)
        assert join.done
        assert join.latency == 2 * DELTA  # inquiry round trip only

    def test_class_flags(self):
        assert SynchronousRegisterNode.join_wait is True
        assert NaiveSyncRegisterNode.join_wait is False
        assert NaiveSyncRegisterNode.protocol_name == "naive"

    def test_naive_join_is_fine_without_concurrent_writes(self):
        """The bug only bites when a write overlaps the join."""
        system = make_system(protocol="naive")
        system.spawn_joiner()
        system.run_for(3 * DELTA)
        assert system.check_safety().is_safe


class TestFigure3Scenarios:
    def test_figure_3a_violates_regularity(self):
        scenario = figure_3a()
        assert not scenario.safety.is_safe
        assert scenario.handles["read"].result == "v0"
        assert scenario.handles["join"].result.value == "v0"

    def test_figure_3a_join_itself_is_legal(self):
        """The join overlaps the write, so adopting the old value is
        allowed — the violation is the *later* read (Lemma 3's point)."""
        scenario = figure_3a()
        join_judgements = [
            j for j in scenario.safety.judgements if j.is_join
        ]
        assert all(j.valid for j in join_judgements)

    def test_figure_3b_same_schedule_is_safe(self):
        scenario = figure_3b()
        assert scenario.safety.is_safe
        assert scenario.handles["read"].result == "v1"
        assert scenario.handles["join"].result.value == "v1"

    def test_figure_3b_join_within_lemma1_bound(self):
        scenario = figure_3b()
        join = scenario.handles["join"]
        assert join.latency <= 3 * DELTA

    def test_scenarios_are_deterministic(self):
        first = figure_3a()
        second = figure_3a()
        assert (
            first.handles["read"].result == second.handles["read"].result
        )
        assert (
            first.handles["join"].response_time
            == second.handles["join"].response_time
        )
