"""Tests for the static ABD baseline."""

import pytest

from repro.core.register import BOTTOM
from repro.sim.errors import ConfigError
from tests.conftest import make_system

DELTA = 5.0


class TestStaticOperation:
    def test_write_then_read(self, abd_system):
        write = abd_system.write("v1")
        abd_system.run_for(4 * DELTA)
        assert write.done
        handle = abd_system.read(abd_system.seed_pids[4])
        abd_system.run_for(4 * DELTA)
        assert handle.done
        assert handle.result == "v1"

    def test_read_pays_two_phases(self, abd_system):
        before = abd_system.network.sent_count
        handle = abd_system.read(abd_system.seed_pids[4])
        abd_system.run_for(4 * DELTA)
        assert handle.done
        # Phase 1: n queries + >= majority replies; phase 2: n
        # write-backs + >= majority acks.  At least 2n messages total.
        assert abd_system.network.sent_count - before >= 2 * 10

    def test_majority_definition(self, abd_system):
        node = abd_system.node(abd_system.seed_pids[0])
        assert node.majority == 6
        assert node.is_replica

    def test_atomicity_with_write_back(self, abd_system):
        """Single-writer ABD with read write-back is atomic, not merely
        regular: sequential reads never invert."""
        abd_system.write("v1")
        for _ in range(4):
            abd_system.read(abd_system.seed_pids[3])
            abd_system.run_for(2 * DELTA)
            abd_system.read(abd_system.seed_pids[7])
            abd_system.run_for(2 * DELTA)
        abd_system.run_for(4 * DELTA)
        report = abd_system.check_atomicity()
        assert report.is_atomic

    def test_missing_universe_rejected(self, engine):
        from repro.core.register import NodeContext
        from repro.protocols.abd import AbdRegisterNode

        ctx = NodeContext(
            engine=engine,
            network=None,
            broadcast=None,
            trace=None,
            n=3,
            delta=1.0,
        )
        node = AbdRegisterNode("p1", ctx)
        with pytest.raises(ConfigError):
            node.universe


class TestNewcomers:
    def test_join_is_trivial_and_instant(self, abd_system):
        pid = abd_system.spawn_joiner()
        join = abd_system.history.joins()[0]
        assert join.done
        assert join.latency == 0.0
        assert abd_system.node(pid).is_active

    def test_newcomer_is_not_a_replica(self, abd_system):
        pid = abd_system.spawn_joiner()
        abd_system.run_for(1.0)
        assert not abd_system.node(pid).is_replica

    def test_newcomer_reads_via_the_universe(self, abd_system):
        abd_system.write("v1")
        abd_system.run_for(4 * DELTA)
        pid = abd_system.spawn_joiner()
        abd_system.run_for(1.0)
        handle = abd_system.read(pid)
        abd_system.run_for(4 * DELTA)
        assert handle.done
        assert handle.result == "v1"

    def test_newcomer_holds_bottom_until_it_reads(self, abd_system):
        pid = abd_system.spawn_joiner()
        abd_system.run_for(1.0)
        assert abd_system.node(pid).register_value is BOTTOM


class TestChurnCollapse:
    def test_operations_block_once_majority_of_universe_left(self):
        system = make_system(protocol="abd", n=10, seed=3)
        # Remove 5 of the 10 replicas: majority (6) is unreachable.
        for pid in system.seed_pids[1:6]:
            system.leave(pid)
        write = system.write("vx")
        read = system.read(system.seed_pids[7])
        system.run_for(20 * DELTA)
        assert write.pending
        assert read.pending

    def test_operations_survive_minority_loss(self):
        system = make_system(protocol="abd", n=10, seed=3)
        for pid in system.seed_pids[1:5]:  # 4 < half
            system.leave(pid)
        write = system.write("vx")
        system.run_for(6 * DELTA)
        assert write.done
        read = system.read(system.seed_pids[7])
        system.run_for(6 * DELTA)
        assert read.done
        assert read.result == "vx"
