"""Tests for the eventually-synchronous protocol (Figures 4, 5 and 6)."""

import pytest

from repro.net.delay import AdversarialDelay, EventuallySynchronousDelay, SynchronousDelay
from repro.protocols.es_reg import (
    EsAck,
    EsDlPrev,
    EsInquiry,
    EsReply,
    EsWrite,
)
from repro.sim.errors import ProcessError
from tests.conftest import make_system

DELTA = 5.0


def make_es(**overrides):
    params = {"protocol": "es", "n": 11}
    params.update(overrides)
    return make_system(**params)


class TestJoin:
    def test_join_completes_with_majority_replies(self):
        system = make_es()
        pid = system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(4 * DELTA)
        assert join.done
        assert join.result.value == "v0"
        assert system.node(pid).is_active

    def test_majority_is_floor_n_half_plus_one(self):
        system = make_es(n=11)
        pid = system.spawn_joiner()
        assert system.node(pid).majority == 6

    def test_join_blocks_until_majority(self):
        """With only a minority of actives reachable, the join waits."""
        system = make_es(n=11)
        # Evict seeds until only 5 actives remain (< majority of 6).
        for pid in list(system.seed_pids[:6]):
            system.leave(pid)
        system.spawn_joiner()
        join = system.history.joins()[0]
        system.run_for(10 * DELTA)
        assert join.pending

    def test_double_join_rejected(self):
        system = make_es()
        pid = system.spawn_joiner()
        system.run_for(4 * DELTA)
        with pytest.raises(ProcessError):
            system.node(pid).join()


class TestRead:
    def test_read_returns_current_value(self):
        system = make_es()
        handle = system.read(system.seed_pids[3])
        system.run_for(4 * DELTA)
        assert handle.done
        assert handle.result == "v0"

    def test_read_pays_a_round_trip(self):
        system = make_es()
        handle = system.read(system.seed_pids[3])
        system.run_for(4 * DELTA)
        assert handle.latency > 0.0

    def test_read_after_write_returns_new_value(self):
        system = make_es()
        write = system.write("v1")
        system.run_for(6 * DELTA)
        assert write.done
        handle = system.read(system.seed_pids[4])
        system.run_for(4 * DELTA)
        assert handle.result == "v1"

    def test_read_before_join_rejected(self):
        system = make_es()
        pid = system.spawn_joiner()
        with pytest.raises(ProcessError):
            system.read(pid)

    def test_stale_reply_guard(self):
        """Figure 4 line 19: replies tagged with an old read_sn are ignored."""
        system = make_es()
        node = system.node(system.seed_pids[2])
        peer = system.seed_pids[3]
        node._reads._requests[None] = 5  # pretend 5 read rounds happened
        phase = node._reads.open(None)
        node.on_esreply(peer, EsReply(peer, "junk", 99, read_sn=3))
        assert phase.count == 0
        node.on_esreply(peer, EsReply(peer, "fresh", 7, read_sn=5))
        assert phase.senders() == (peer,)
        assert phase.best_for(None) == ("fresh", 7)


class TestWrite:
    def test_write_completes_with_majority_acks(self):
        system = make_es()
        handle = system.write("v1")
        system.run_for(6 * DELTA)
        assert handle.done
        assert handle.result == "ok"

    def test_write_disseminates_to_majority(self):
        system = make_es()
        system.write("v1")
        system.run_for(6 * DELTA)
        holders = sum(
            1
            for pid in system.seed_pids
            if system.node(pid).register_value == "v1"
        )
        assert holders >= system.node(system.seed_pids[0]).majority

    def test_write_embeds_a_read_first(self):
        """Figure 6 line 01: the write starts with a read."""
        system = make_es()
        node = system.node(system.writer_pid)
        before = node._reads.current_request(None)
        system.write("v1")
        assert node._reads.current_request(None) == before + 1

    def test_ack_guard_matches_current_sn(self):
        """Figure 6 lines 09-10: only acks for the current sn count."""
        system = make_es()
        node = system.node(system.seed_pids[1])
        node.space.install(None, node.space.value(), 4)
        node.on_esack("a", EsAck("a", 3))
        assert node._acks.phase(None).count == 0
        node.on_esack("a", EsAck("a", 4))
        assert node._acks.phase(None).senders() == ("a",)

    def test_stale_write_does_not_downgrade_but_still_acks(self):
        """Figure 6 lines 06-08: ACK is sent in all cases."""
        system = make_es()
        node = system.node(system.seed_pids[1])
        peer = system.seed_pids[4]
        node.space.install(None, "newest", 9)
        before = system.network.sent_count
        node.on_eswrite(peer, EsWrite(peer, "old", 3))
        assert node.register_value == "newest"
        assert system.network.sent_count == before + 1  # the ACK


class TestDlPrev:
    def test_non_active_process_defers_and_promises(self):
        """Figure 4 lines 15-16."""
        system = make_es()
        joiner_pid = system.spawn_joiner()
        joiner = system.node(joiner_pid)
        peer = system.seed_pids[1]
        before = system.network.sent_count
        joiner.on_esinquiry(peer, EsInquiry(peer, 0))
        assert (peer, 0, None) in joiner._reply_to
        assert system.network.sent_count == before + 1  # the DL_PREV

    def test_dl_prev_recorded_by_receiver(self):
        """Figure 4 line 22."""
        system = make_es()
        node = system.node(system.seed_pids[0])
        peer = system.seed_pids[5]
        node.on_esdlprev(peer, EsDlPrev(peer, 4))
        assert (peer, 4, None) in node._dl_prev

    def test_active_reader_promises_too(self):
        """Figure 4 line 14: an active *reading* process sends DL_PREV."""
        system = make_es()
        node = system.node(system.seed_pids[2])
        peer = system.seed_pids[6]
        node._reads.open(None)  # a read round is in progress
        before = system.network.sent_count
        node.on_esinquiry(peer, EsInquiry(peer, 0))
        # One REPLY (line 13) + one DL_PREV (line 14).
        assert system.network.sent_count == before + 2

    def test_active_non_reader_only_replies(self):
        system = make_es()
        node = system.node(system.seed_pids[2])
        peer = system.seed_pids[6]
        before = system.network.sent_count
        node.on_esinquiry(peer, EsInquiry(peer, 0))
        assert system.network.sent_count == before + 1

    def test_concurrent_joiners_unblock_each_other(self):
        """The Lemma 5 mechanism, deterministically.

        Make the seeds' replies to the first joiner impossibly slow; the
        second joiner completes via the seeds, then answers the first
        joiner's recorded DL_PREV/reply_to entries, unblocking it.
        """
        victim = {}

        def starve(sender, dest, payload, t):
            if (
                dest == victim.get("pid")
                and isinstance(payload, EsReply)
                and sender not in victim.get("peers", ())
            ):
                return 10_000.0
            return None

        system = make_es(
            delay=AdversarialDelay(starve, fallback=SynchronousDelay(DELTA)),
        )
        victim["pid"] = system.spawn_joiner()
        first = system.history.joins()[0]
        system.run_for(2 * DELTA)
        assert first.pending
        helpers = []
        # Spawn a stream of helpers: each completes its own join via the
        # seeds and, *if* it heard the victim's DL_PREV before finishing,
        # answers the victim at activation.  The paper's Lemma 5 leans
        # on joiners arriving forever; a generous finite stream suffices
        # here (each helper catches the DL_PREV with constant
        # probability, so the victim's majority accumulates).
        majority = system.node(victim["pid"]).majority
        for _ in range(6 * majority):
            helpers.append(system.spawn_joiner())
            victim["peers"] = tuple(helpers)
            system.run_for(3 * DELTA)
            if first.done:
                break
        system.run_for(6 * DELTA)
        assert first.done, "the DL_PREV chain failed to unblock the victim"


class TestEventualSynchrony:
    def test_post_gst_operations_are_fast(self):
        system = make_es(
            delay=EventuallySynchronousDelay(gst=0.0, delta=DELTA),
        )
        handle = system.read(system.seed_pids[5])
        system.run_for(3 * DELTA)
        assert handle.done
        assert handle.latency <= 2 * DELTA

    def test_run_across_gst_is_safe_and_live(self):
        system = make_es(
            delay=EventuallySynchronousDelay(gst=40.0, delta=DELTA, pre_gst_max=40.0),
            seed=5,
        )
        system.attach_churn(rate=0.004, min_stay=3 * DELTA)
        system.write("v1")
        system.run_until(100.0)
        handle = system.read(system.active_pids()[3])
        system.run_for(8 * DELTA)
        assert handle.done
        assert handle.result == "v1"
        assert system.check_safety().is_safe
        assert system.check_liveness(grace=12 * DELTA).is_live


class TestQuorumOverride:
    """ctx.extra['quorum_size'] powers ablation A6."""

    def test_override_applies(self):
        system = make_es(extra={"quorum_size": 4})
        assert system.node(system.seed_pids[0]).majority == 4

    def test_invalid_override_rejected(self):
        with pytest.raises(ProcessError):
            make_es(extra={"quorum_size": 0})
        with pytest.raises(ProcessError):
            make_es(extra={"quorum_size": 99})

    def test_join_result_exposes_ok(self):
        from repro.protocols.common import JoinResult, OK

        assert JoinResult("v", 0).ok == OK
