"""Setup shim: enables `pip install -e . --no-use-pep517` in the offline
environment (no `wheel` package available for PEP 517 editable builds)."""

from setuptools import setup

setup()
